package orderentry

import (
	"encoding/binary"
	"errors"
	"fmt"

	"lighttrader/internal/exchange"
	"lighttrader/internal/lob"
)

// iLink 3 style binary order entry. Real iLink 3 is SBE over a Simple Open
// Framing Header; this subset keeps the framing header and fixed-layout
// little-endian bodies for the three order actions plus the business reject
// / execution ack, which is what the LightTrader trading engine emits.

// Simple Open Framing Header: messageLength uint16 | encodingType uint16.
const (
	sofhLen         = 4
	encodingTypeSBE = 0xCAFE
	ilinkHeaderLen  = 4 // templateID uint16 | schemaVersion uint16
	ilinkSchemaVer  = 3
	templateNew     = 514
	templateReplace = 515
	templateCancel  = 516
	templateExecAck = 522
	newOrderBodyLen = 8 + 8 + 4 + 8 + 1 + 1 + 2 // clOrdID, price, secID, qty, side, ordType, pad
	cancelBodyLen   = 8 + 4 + 4                 // clOrdID, secID, pad
	replaceBodyLen  = 8 + 8 + 8 + 4 + 8 + 4     // clOrdID, newClOrdID, price, secID, qty, pad
	execAckBodyLen  = 8 + 8 + 8 + 4 + 1 + 3     // clOrdID, price, qty, secID, execType, pad
	maxILinkBodyLen = 1 << 12
	ilinkOrdTypeMkt = 1
	ilinkOrdTypeLmt = 2
	ilinkSideBuy    = 1
	ilinkSideSell   = 2
)

// iLink decode errors. ErrILinkShort strictly means "the buffer does not
// yet hold the whole frame — read more and retry"; every self-inconsistent
// frame (SOFH length too small for its own header, or too small for the
// body its template requires) is ErrILinkMalformed so streaming callers
// drop the session instead of waiting forever for bytes that cannot come.
var (
	ErrILinkShort     = errors.New("orderentry: short iLink frame")
	ErrILinkEncoding  = errors.New("orderentry: unknown iLink encoding")
	ErrILinkTemplate  = errors.New("orderentry: unknown iLink template")
	ErrILinkMalformed = errors.New("orderentry: malformed iLink frame")
)

// ExecAck is the exchange's binary acknowledgement of an order action.
type ExecAck struct {
	ClOrdID    uint64
	Price      int64
	Qty        int64
	SecurityID int32
	Exec       exchange.ExecType
}

// AppendRequest encodes an exchange.Request as an iLink frame appended to
// dst. Market orders carry price 0.
func AppendRequest(dst []byte, req exchange.Request) []byte {
	switch req.Kind {
	case exchange.ReqNew:
		dst = appendSOFH(dst, ilinkHeaderLen+newOrderBodyLen)
		dst = appendILinkHeader(dst, templateNew)
		dst = binary.LittleEndian.AppendUint64(dst, req.ClOrdID)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(req.Price))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(req.SecurityID))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(req.Qty))
		dst = append(dst, ilinkSide(req.Side), ilinkOrdType(req.Type), 0, 0)
	case exchange.ReqCancel:
		dst = appendSOFH(dst, ilinkHeaderLen+cancelBodyLen)
		dst = appendILinkHeader(dst, templateCancel)
		dst = binary.LittleEndian.AppendUint64(dst, req.ClOrdID)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(req.SecurityID))
		dst = append(dst, 0, 0, 0, 0)
	case exchange.ReqReplace:
		dst = appendSOFH(dst, ilinkHeaderLen+replaceBodyLen)
		dst = appendILinkHeader(dst, templateReplace)
		dst = binary.LittleEndian.AppendUint64(dst, req.ClOrdID)
		dst = binary.LittleEndian.AppendUint64(dst, req.NewClOrdID)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(req.Price))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(req.SecurityID))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(req.Qty))
		dst = append(dst, 0, 0, 0, 0)
	}
	return dst
}

// AppendExecAck encodes an execution acknowledgement frame.
func AppendExecAck(dst []byte, ack ExecAck) []byte {
	dst = appendSOFH(dst, ilinkHeaderLen+execAckBodyLen)
	dst = appendILinkHeader(dst, templateExecAck)
	dst = binary.LittleEndian.AppendUint64(dst, ack.ClOrdID)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(ack.Price))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(ack.Qty))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ack.SecurityID))
	dst = append(dst, byte(ack.Exec), 0, 0, 0)
	return dst
}

func appendSOFH(dst []byte, bodyLen int) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(sofhLen+bodyLen))
	dst = binary.LittleEndian.AppendUint16(dst, encodingTypeSBE)
	return dst
}

func appendILinkHeader(dst []byte, template uint16) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, template)
	dst = binary.LittleEndian.AppendUint16(dst, ilinkSchemaVer)
	return dst
}

func ilinkSide(s lob.Side) byte {
	if s == lob.Bid {
		return ilinkSideBuy
	}
	return ilinkSideSell
}

func ilinkOrdType(t exchange.OrderType) byte {
	if t == exchange.Market {
		return ilinkOrdTypeMkt
	}
	return ilinkOrdTypeLmt
}

// Frame is a decoded iLink frame: exactly one of Request/Ack is set.
type Frame struct {
	Request *exchange.Request
	Ack     *ExecAck
}

// DecodeFrame decodes one iLink frame from buf, returning the frame and
// bytes consumed. Callers streaming from TCP should retry with more data on
// ErrILinkShort.
func DecodeFrame(buf []byte) (Frame, int, error) {
	if len(buf) < sofhLen {
		return Frame{}, 0, ErrILinkShort
	}
	frameLen := int(binary.LittleEndian.Uint16(buf[0:]))
	if enc := binary.LittleEndian.Uint16(buf[2:]); enc != encodingTypeSBE {
		return Frame{}, 0, fmt.Errorf("%w: 0x%04x", ErrILinkEncoding, enc)
	}
	if frameLen < sofhLen+ilinkHeaderLen || frameLen > maxILinkBodyLen {
		return Frame{}, 0, fmt.Errorf("%w: frame length %d", ErrILinkMalformed, frameLen)
	}
	if len(buf) < frameLen {
		return Frame{}, 0, ErrILinkShort
	}
	template := binary.LittleEndian.Uint16(buf[sofhLen:])
	body := buf[sofhLen+ilinkHeaderLen : frameLen]
	switch template {
	case templateNew:
		if len(body) < newOrderBodyLen {
			return Frame{}, 0, fmt.Errorf("%w: new-order body %d", ErrILinkMalformed, len(body))
		}
		req := &exchange.Request{
			Kind:       exchange.ReqNew,
			ClOrdID:    binary.LittleEndian.Uint64(body[0:]),
			Price:      int64(binary.LittleEndian.Uint64(body[8:])),
			SecurityID: int32(binary.LittleEndian.Uint32(body[16:])),
			Qty:        int64(binary.LittleEndian.Uint64(body[20:])),
		}
		if body[28] == ilinkSideBuy {
			req.Side = lob.Bid
		} else {
			req.Side = lob.Ask
		}
		if body[29] == ilinkOrdTypeMkt {
			req.Type = exchange.Market
		}
		return Frame{Request: req}, frameLen, nil
	case templateCancel:
		if len(body) < cancelBodyLen {
			return Frame{}, 0, fmt.Errorf("%w: cancel body %d", ErrILinkMalformed, len(body))
		}
		return Frame{Request: &exchange.Request{
			Kind:       exchange.ReqCancel,
			ClOrdID:    binary.LittleEndian.Uint64(body[0:]),
			SecurityID: int32(binary.LittleEndian.Uint32(body[8:])),
		}}, frameLen, nil
	case templateReplace:
		if len(body) < replaceBodyLen {
			return Frame{}, 0, fmt.Errorf("%w: replace body %d", ErrILinkMalformed, len(body))
		}
		return Frame{Request: &exchange.Request{
			Kind:       exchange.ReqReplace,
			ClOrdID:    binary.LittleEndian.Uint64(body[0:]),
			NewClOrdID: binary.LittleEndian.Uint64(body[8:]),
			Price:      int64(binary.LittleEndian.Uint64(body[16:])),
			SecurityID: int32(binary.LittleEndian.Uint32(body[24:])),
			Qty:        int64(binary.LittleEndian.Uint64(body[28:])),
		}}, frameLen, nil
	case templateExecAck:
		if len(body) < execAckBodyLen {
			return Frame{}, 0, fmt.Errorf("%w: exec-ack body %d", ErrILinkMalformed, len(body))
		}
		return Frame{Ack: &ExecAck{
			ClOrdID:    binary.LittleEndian.Uint64(body[0:]),
			Price:      int64(binary.LittleEndian.Uint64(body[8:])),
			Qty:        int64(binary.LittleEndian.Uint64(body[16:])),
			SecurityID: int32(binary.LittleEndian.Uint32(body[24:])),
			Exec:       exchange.ExecType(body[28]),
		}}, frameLen, nil
	default:
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrILinkTemplate, template)
	}
}

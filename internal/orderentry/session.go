package orderentry

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// iLink 3 style session layer: before business messages flow, the client
// Negotiates (binds a UUID to the session) and Establishes (activates the
// message path and agrees a keep-alive interval). While established, both
// sides exchange Sequence frames as heartbeats; missing keep-alives
// terminates the session. This is the FIXP-derived handshake CME requires
// of every order-entry session; the state machines are pure (no I/O) so
// the venue server and tests drive them directly.

// Session template IDs.
const (
	templateNegotiate         = 500
	templateNegotiateResponse = 501
	templateEstablish         = 503
	templateEstablishAck      = 504
	templateSequence          = 506
	templateTerminate         = 507

	negotiateBodyLen = 8 + 8     // uuid, requestTimestamp
	negotiateRespLen = 8 + 8     // uuid, requestTimestamp
	establishBodyLen = 8 + 8 + 4 // uuid, requestTimestamp, keepAliveMillis
	establishAckLen  = 8 + 8 + 4 // uuid, nextSeqNo, keepAliveMillis
	sequenceBodyLen  = 8 + 8     // uuid, nextSeqNo
	terminateBodyLen = 8 + 1 + 3 // uuid, reason, pad
)

// Session frame kinds decoded by DecodeSessionFrame.
type SessionFrame struct {
	Template  uint16
	UUID      uint64
	Timestamp uint64 // requestTimestamp where applicable
	NextSeqNo uint64
	KeepAlive uint32 // milliseconds
	Reason    byte
}

// Terminate reasons.
const (
	TerminateFinished         = 0
	TerminateKeepAliveExpired = 1
	TerminateProtocolError    = 2
)

// Session errors.
var (
	ErrNotSessionFrame = errors.New("orderentry: not a session frame")
	ErrSessionState    = errors.New("orderentry: invalid session state")
)

// AppendNegotiate encodes a Negotiate frame.
func AppendNegotiate(dst []byte, uuid, ts uint64) []byte {
	dst = appendSOFH(dst, ilinkHeaderLen+negotiateBodyLen)
	dst = appendILinkHeader(dst, templateNegotiate)
	dst = binary.LittleEndian.AppendUint64(dst, uuid)
	dst = binary.LittleEndian.AppendUint64(dst, ts)
	return dst
}

// AppendNegotiateResponse encodes the venue's acceptance.
func AppendNegotiateResponse(dst []byte, uuid, ts uint64) []byte {
	dst = appendSOFH(dst, ilinkHeaderLen+negotiateRespLen)
	dst = appendILinkHeader(dst, templateNegotiateResponse)
	dst = binary.LittleEndian.AppendUint64(dst, uuid)
	dst = binary.LittleEndian.AppendUint64(dst, ts)
	return dst
}

// AppendEstablish encodes an Establish frame.
func AppendEstablish(dst []byte, uuid, ts uint64, keepAliveMillis uint32) []byte {
	dst = appendSOFH(dst, ilinkHeaderLen+establishBodyLen)
	dst = appendILinkHeader(dst, templateEstablish)
	dst = binary.LittleEndian.AppendUint64(dst, uuid)
	dst = binary.LittleEndian.AppendUint64(dst, ts)
	dst = binary.LittleEndian.AppendUint32(dst, keepAliveMillis)
	return dst
}

// AppendEstablishAck encodes the venue's establishment acknowledgement.
func AppendEstablishAck(dst []byte, uuid, nextSeqNo uint64, keepAliveMillis uint32) []byte {
	dst = appendSOFH(dst, ilinkHeaderLen+establishAckLen)
	dst = appendILinkHeader(dst, templateEstablishAck)
	dst = binary.LittleEndian.AppendUint64(dst, uuid)
	dst = binary.LittleEndian.AppendUint64(dst, nextSeqNo)
	dst = binary.LittleEndian.AppendUint32(dst, keepAliveMillis)
	return dst
}

// AppendSequence encodes a Sequence (heartbeat) frame.
func AppendSequence(dst []byte, uuid, nextSeqNo uint64) []byte {
	dst = appendSOFH(dst, ilinkHeaderLen+sequenceBodyLen)
	dst = appendILinkHeader(dst, templateSequence)
	dst = binary.LittleEndian.AppendUint64(dst, uuid)
	dst = binary.LittleEndian.AppendUint64(dst, nextSeqNo)
	return dst
}

// AppendTerminate encodes a Terminate frame.
func AppendTerminate(dst []byte, uuid uint64, reason byte) []byte {
	dst = appendSOFH(dst, ilinkHeaderLen+terminateBodyLen)
	dst = appendILinkHeader(dst, templateTerminate)
	dst = binary.LittleEndian.AppendUint64(dst, uuid)
	dst = append(dst, reason, 0, 0, 0)
	return dst
}

// DecodeSessionFrame decodes one session-layer frame, returning
// ErrNotSessionFrame for business templates so callers can fall through to
// DecodeFrame.
func DecodeSessionFrame(buf []byte) (SessionFrame, int, error) {
	if len(buf) < sofhLen+ilinkHeaderLen {
		return SessionFrame{}, 0, ErrILinkShort
	}
	frameLen := int(binary.LittleEndian.Uint16(buf[0:]))
	if enc := binary.LittleEndian.Uint16(buf[2:]); enc != encodingTypeSBE {
		return SessionFrame{}, 0, fmt.Errorf("%w: 0x%04x", ErrILinkEncoding, enc)
	}
	// A frame too small to carry its own header cannot be sliced below: a
	// corrupt SOFH length (e.g. frameLen=6 in a 16-byte datagram) must be a
	// decode error, not a slice-bounds panic that kills the venue.
	if frameLen < sofhLen+ilinkHeaderLen || frameLen > maxILinkBodyLen {
		return SessionFrame{}, 0, fmt.Errorf("%w: frame length %d", ErrILinkMalformed, frameLen)
	}
	if len(buf) < frameLen {
		return SessionFrame{}, 0, ErrILinkShort
	}
	template := binary.LittleEndian.Uint16(buf[sofhLen:])
	body := buf[sofhLen+ilinkHeaderLen : frameLen]
	f := SessionFrame{Template: template}
	switch template {
	case templateNegotiate, templateNegotiateResponse:
		if len(body) < negotiateBodyLen {
			return SessionFrame{}, 0, fmt.Errorf("%w: negotiate body %d", ErrILinkMalformed, len(body))
		}
		f.UUID = binary.LittleEndian.Uint64(body[0:])
		f.Timestamp = binary.LittleEndian.Uint64(body[8:])
	case templateEstablish:
		if len(body) < establishBodyLen {
			return SessionFrame{}, 0, fmt.Errorf("%w: establish body %d", ErrILinkMalformed, len(body))
		}
		f.UUID = binary.LittleEndian.Uint64(body[0:])
		f.Timestamp = binary.LittleEndian.Uint64(body[8:])
		f.KeepAlive = binary.LittleEndian.Uint32(body[16:])
	case templateEstablishAck:
		if len(body) < establishAckLen {
			return SessionFrame{}, 0, fmt.Errorf("%w: establish-ack body %d", ErrILinkMalformed, len(body))
		}
		f.UUID = binary.LittleEndian.Uint64(body[0:])
		f.NextSeqNo = binary.LittleEndian.Uint64(body[8:])
		f.KeepAlive = binary.LittleEndian.Uint32(body[16:])
	case templateSequence:
		if len(body) < sequenceBodyLen {
			return SessionFrame{}, 0, fmt.Errorf("%w: sequence body %d", ErrILinkMalformed, len(body))
		}
		f.UUID = binary.LittleEndian.Uint64(body[0:])
		f.NextSeqNo = binary.LittleEndian.Uint64(body[8:])
	case templateTerminate:
		if len(body) < terminateBodyLen {
			return SessionFrame{}, 0, fmt.Errorf("%w: terminate body %d", ErrILinkMalformed, len(body))
		}
		f.UUID = binary.LittleEndian.Uint64(body[0:])
		f.Reason = body[8]
	default:
		return SessionFrame{}, 0, ErrNotSessionFrame
	}
	return f, frameLen, nil
}

// SessionState is the FIXP state machine position.
type SessionState uint8

const (
	// StateIdle is the initial state.
	StateIdle SessionState = iota
	// StateNegotiated has a bound UUID but no active message path.
	StateNegotiated
	// StateEstablished accepts business messages.
	StateEstablished
	// StateTerminated is final.
	StateTerminated
)

// String implements fmt.Stringer.
func (s SessionState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateNegotiated:
		return "negotiated"
	case StateEstablished:
		return "established"
	case StateTerminated:
		return "terminated"
	default:
		return fmt.Sprintf("SessionState(%d)", uint8(s))
	}
}

// VenueSession is the exchange-side session state machine for one
// connection. now is supplied by the caller in nanoseconds.
type VenueSession struct {
	state     SessionState
	uuid      uint64
	keepAlive uint32 // ms
	lastHeard int64
	nextSeqNo uint64
}

// NewVenueSession returns an idle venue-side session.
func NewVenueSession() *VenueSession { return &VenueSession{nextSeqNo: 1} }

// State returns the current state.
func (v *VenueSession) State() SessionState { return v.state }

// UUID returns the bound session id (0 before negotiation).
func (v *VenueSession) UUID() uint64 { return v.uuid }

// KeepAlive returns the negotiated keep-alive interval in milliseconds
// (0 before establishment).
func (v *VenueSession) KeepAlive() uint32 { return v.keepAlive }

// NextSeqNo returns the next expected business sequence number.
func (v *VenueSession) NextSeqNo() uint64 { return v.nextSeqNo }

// OnFrame advances the state machine with a received session frame and
// returns the encoded reply (nil if none).
func (v *VenueSession) OnFrame(f SessionFrame, now int64) ([]byte, error) {
	v.lastHeard = now
	switch f.Template {
	case templateNegotiate:
		if v.state != StateIdle {
			return AppendTerminate(nil, f.UUID, TerminateProtocolError),
				fmt.Errorf("%w: negotiate in %v", ErrSessionState, v.state)
		}
		v.uuid = f.UUID
		v.state = StateNegotiated
		return AppendNegotiateResponse(nil, f.UUID, f.Timestamp), nil
	case templateEstablish:
		if v.state != StateNegotiated || f.UUID != v.uuid {
			return AppendTerminate(nil, f.UUID, TerminateProtocolError),
				fmt.Errorf("%w: establish in %v", ErrSessionState, v.state)
		}
		if f.KeepAlive == 0 {
			return AppendTerminate(nil, f.UUID, TerminateProtocolError),
				fmt.Errorf("%w: zero keep-alive", ErrSessionState)
		}
		v.keepAlive = f.KeepAlive
		v.state = StateEstablished
		return AppendEstablishAck(nil, v.uuid, v.nextSeqNo, v.keepAlive), nil
	case templateSequence:
		if v.state != StateEstablished {
			return nil, fmt.Errorf("%w: sequence in %v", ErrSessionState, v.state)
		}
		return nil, nil // heartbeat consumed
	case templateTerminate:
		v.state = StateTerminated
		return nil, nil
	default:
		return nil, ErrNotSessionFrame
	}
}

// OnBusiness records business-message activity; it returns an error unless
// the session is established.
func (v *VenueSession) OnBusiness(now int64) error {
	if v.state != StateEstablished {
		return fmt.Errorf("%w: business message in %v", ErrSessionState, v.state)
	}
	v.lastHeard = now
	v.nextSeqNo++
	return nil
}

// Expired reports whether the keep-alive window (3 missed intervals) has
// lapsed; the venue then terminates the session.
func (v *VenueSession) Expired(now int64) bool {
	if v.state != StateEstablished || v.keepAlive == 0 {
		return false
	}
	return now-v.lastHeard > 3*int64(v.keepAlive)*1_000_000
}

// ClientSession is the trader-side state machine.
type ClientSession struct {
	state     SessionState
	uuid      uint64
	keepAlive uint32
	nextSeqNo uint64
	lastSent  int64
}

// NewClientSession returns an idle client session for uuid.
func NewClientSession(uuid uint64) *ClientSession {
	return &ClientSession{uuid: uuid, nextSeqNo: 1}
}

// State returns the current state.
func (c *ClientSession) State() SessionState { return c.state }

// Negotiate produces the opening frame.
func (c *ClientSession) Negotiate(now int64) ([]byte, error) {
	if c.state != StateIdle {
		return nil, fmt.Errorf("%w: negotiate in %v", ErrSessionState, c.state)
	}
	return AppendNegotiate(nil, c.uuid, uint64(now)), nil
}

// Establish produces the establish frame after a successful negotiation.
func (c *ClientSession) Establish(now int64, keepAliveMillis uint32) ([]byte, error) {
	if c.state != StateNegotiated {
		return nil, fmt.Errorf("%w: establish in %v", ErrSessionState, c.state)
	}
	if keepAliveMillis == 0 {
		return nil, fmt.Errorf("%w: zero keep-alive", ErrSessionState)
	}
	c.keepAlive = keepAliveMillis
	return AppendEstablish(nil, c.uuid, uint64(now), keepAliveMillis), nil
}

// OnFrame advances the client with a venue session frame.
func (c *ClientSession) OnFrame(f SessionFrame, now int64) error {
	switch f.Template {
	case templateNegotiateResponse:
		if c.state != StateIdle || f.UUID != c.uuid {
			return fmt.Errorf("%w: negotiate response in %v", ErrSessionState, c.state)
		}
		c.state = StateNegotiated
	case templateEstablishAck:
		if c.state != StateNegotiated || f.UUID != c.uuid {
			return fmt.Errorf("%w: establish ack in %v", ErrSessionState, c.state)
		}
		c.state = StateEstablished
		c.nextSeqNo = f.NextSeqNo
		c.lastSent = now
	case templateTerminate:
		c.state = StateTerminated
	case templateSequence:
		// Venue heartbeat; nothing to do.
	default:
		return ErrNotSessionFrame
	}
	return nil
}

// Heartbeat returns a Sequence frame when the keep-alive interval since the
// last send has elapsed, else nil.
func (c *ClientSession) Heartbeat(now int64) []byte {
	if c.state != StateEstablished {
		return nil
	}
	if now-c.lastSent < int64(c.keepAlive)*1_000_000 {
		return nil
	}
	c.lastSent = now
	return AppendSequence(nil, c.uuid, c.nextSeqNo)
}

// NoteSent records outbound business activity (defers the next heartbeat).
func (c *ClientSession) NoteSent(now int64) {
	c.lastSent = now
	c.nextSeqNo++
}

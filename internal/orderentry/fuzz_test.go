package orderentry

import (
	"testing"

	"lighttrader/internal/exchange"
	"lighttrader/internal/lob"
)

// FuzzDecodeFrame exercises the iLink business-frame decoder.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendRequest(nil, exchange.Request{
		Kind: exchange.ReqNew, SecurityID: 7, ClOrdID: 1,
		Side: lob.Bid, Price: 100, Qty: 2,
	}))
	f.Add(AppendExecAck(nil, ExecAck{ClOrdID: 1}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		if frame.Request == nil && frame.Ack == nil {
			t.Fatal("decoded frame with no payload")
		}
		if frame.Request != nil {
			// Round-trip must be stable.
			re := AppendRequest(nil, *frame.Request)
			f2, _, err := DecodeFrame(re)
			if err != nil || f2.Request == nil || *f2.Request != *frame.Request {
				t.Fatalf("round trip unstable: %+v vs %+v (%v)", f2.Request, frame.Request, err)
			}
		}
	})
}

// FuzzDecodeSessionFrame exercises the session-layer decoder.
func FuzzDecodeSessionFrame(f *testing.F) {
	f.Add(AppendNegotiate(nil, 1, 2))
	f.Add(AppendEstablish(nil, 1, 2, 500))
	f.Add(AppendSequence(nil, 1, 2))
	f.Add(AppendTerminate(nil, 1, TerminateProtocolError))
	// Corrupt-SOFH seeds: frameLen smaller than the headers it must carry.
	// {6,0,0xFE,0xCA,...} is the remote-triggerable panic reproducer.
	f.Add(append([]byte{6, 0, 0xFE, 0xCA}, make([]byte, 12)...))
	f.Add(append([]byte{0, 0, 0xFE, 0xCA}, make([]byte, 12)...))
	f.Add(append([]byte{5, 0, 0xFE, 0xCA}, make([]byte, 4)...))
	f.Add([]byte{7, 0, 0xFE, 0xCA, 0xF4, 0x01, 3, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, n, err := DecodeSessionFrame(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		if frame.Template == 0 {
			t.Fatal("decoded session frame with zero template")
		}
	})
}

// FuzzParseFIX exercises the FIX tag-value parser.
func FuzzParseFIX(f *testing.F) {
	s := NewFIXSession("A", "B")
	f.Add(s.NewOrderSingle(1, "ES", true, 100, 1, "t"))
	f.Add([]byte("8=FIX.4.4\x019=0\x0110=000\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ParseFIX(data)
		if err != nil {
			return
		}
		if msg == nil {
			t.Fatal("nil message with nil error")
		}
	})
}

package orderentry

import (
	"errors"
	"testing"
)

// handshake drives a client and venue through negotiate + establish.
func handshake(t *testing.T) (*ClientSession, *VenueSession) {
	t.Helper()
	client := NewClientSession(0xABCD)
	venue := NewVenueSession()

	neg, err := client.Negotiate(100)
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := DecodeSessionFrame(neg)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := venue.OnFrame(f, 100)
	if err != nil {
		t.Fatal(err)
	}
	rf, _, err := DecodeSessionFrame(reply)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.OnFrame(rf, 110); err != nil {
		t.Fatal(err)
	}

	est, err := client.Establish(120, 500)
	if err != nil {
		t.Fatal(err)
	}
	f, _, err = DecodeSessionFrame(est)
	if err != nil {
		t.Fatal(err)
	}
	reply, err = venue.OnFrame(f, 120)
	if err != nil {
		t.Fatal(err)
	}
	rf, _, err = DecodeSessionFrame(reply)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.OnFrame(rf, 130); err != nil {
		t.Fatal(err)
	}
	return client, venue
}

func TestHandshake(t *testing.T) {
	client, venue := handshake(t)
	if client.State() != StateEstablished || venue.State() != StateEstablished {
		t.Fatalf("states: client %v venue %v", client.State(), venue.State())
	}
	if venue.UUID() != 0xABCD {
		t.Fatalf("uuid = %x", venue.UUID())
	}
}

func TestBusinessRequiresEstablishment(t *testing.T) {
	venue := NewVenueSession()
	if err := venue.OnBusiness(1); err == nil {
		t.Fatal("business message accepted before establishment")
	}
	_, venue = handshake(t)
	if err := venue.OnBusiness(200); err != nil {
		t.Fatal(err)
	}
}

func TestEstablishBeforeNegotiateRejected(t *testing.T) {
	venue := NewVenueSession()
	est := AppendEstablish(nil, 1, 1, 500)
	f, _, err := DecodeSessionFrame(est)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := venue.OnFrame(f, 1)
	if err == nil {
		t.Fatal("establish accepted in idle state")
	}
	// The venue replies with Terminate(protocol error).
	tf, _, err := DecodeSessionFrame(reply)
	if err != nil || tf.Template != templateTerminate || tf.Reason != TerminateProtocolError {
		t.Fatalf("reply = %+v err %v", tf, err)
	}
}

func TestZeroKeepAliveRejected(t *testing.T) {
	client := NewClientSession(1)
	if _, err := client.Negotiate(1); err != nil {
		t.Fatal(err)
	}
	client.state = StateNegotiated
	if _, err := client.Establish(1, 0); err == nil {
		t.Fatal("zero keep-alive accepted")
	}
}

func TestHeartbeatCadence(t *testing.T) {
	client, venue := handshake(t)
	// Inside the interval: no heartbeat.
	if hb := client.Heartbeat(130 + 400*1_000_000); hb != nil {
		t.Fatal("premature heartbeat")
	}
	// Past the interval: Sequence frame.
	hb := client.Heartbeat(130 + 600*1_000_000)
	if hb == nil {
		t.Fatal("no heartbeat after interval")
	}
	f, _, err := DecodeSessionFrame(hb)
	if err != nil || f.Template != templateSequence {
		t.Fatalf("heartbeat = %+v err %v", f, err)
	}
	if _, err := venue.OnFrame(f, 130+600*1_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestKeepAliveExpiry(t *testing.T) {
	_, venue := handshake(t)
	// Three missed 500 ms intervals.
	if venue.Expired(130 + 1_400*1_000_000) {
		t.Fatal("expired too early")
	}
	if !venue.Expired(130 + 1_600*1_000_000) {
		t.Fatal("keep-alive expiry not detected")
	}
}

func TestTerminate(t *testing.T) {
	client, venue := handshake(t)
	term := AppendTerminate(nil, 0xABCD, TerminateFinished)
	f, _, err := DecodeSessionFrame(term)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := venue.OnFrame(f, 500); err != nil {
		t.Fatal(err)
	}
	if venue.State() != StateTerminated {
		t.Fatalf("venue state %v", venue.State())
	}
	if err := client.OnFrame(f, 500); err != nil {
		t.Fatal(err)
	}
	if client.State() != StateTerminated {
		t.Fatalf("client state %v", client.State())
	}
}

func TestSessionFrameFallthrough(t *testing.T) {
	// Business frames must yield ErrNotSessionFrame so callers fall back
	// to DecodeFrame.
	buf := AppendExecAck(nil, ExecAck{ClOrdID: 1})
	if _, _, err := DecodeSessionFrame(buf); !errors.Is(err, ErrNotSessionFrame) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := DecodeSessionFrame([]byte{1}); !errors.Is(err, ErrILinkShort) {
		t.Fatalf("short err = %v", err)
	}
}

func TestDecodeSessionFrameCorruptLength(t *testing.T) {
	// The live-wire reproducer: a 16-byte datagram whose SOFH claims
	// frameLen=6 — smaller than SOFH + iLink header. Decoding used to slice
	// buf[8:6] and panic, killing venue.Server.serveConn.
	repro := append([]byte{6, 0, 0xFE, 0xCA}, make([]byte, 12)...)
	cases := []struct {
		name string
		buf  []byte
	}{
		{"frameLen=6 reproducer", repro},
		{"frameLen=0", append([]byte{0, 0, 0xFE, 0xCA}, make([]byte, 12)...)},
		{"frameLen=7", append([]byte{7, 0, 0xFE, 0xCA}, make([]byte, 12)...)},
		{"frameLen>max", append([]byte{0xFF, 0xFF, 0xFE, 0xCA}, make([]byte, 12)...)},
		// Full frame present but the body is too short for its template:
		// a Sequence header with frameLen=8 leaves a zero-length body.
		{"sequence with empty body", append([]byte{8, 0, 0xFE, 0xCA, 0xFA, 0x01, 3, 0}, make([]byte, 8)...)},
	}
	for _, c := range cases {
		_, n, err := DecodeSessionFrame(c.buf)
		if err == nil {
			t.Fatalf("%s: decoded without error", c.name)
		}
		if errors.Is(err, ErrILinkShort) {
			t.Fatalf("%s: got ErrILinkShort; stream callers would stall waiting for more bytes", c.name)
		}
		if n != 0 {
			t.Fatalf("%s: consumed %d on error", c.name, n)
		}
	}
}

func TestDecodeFrameCorruptLength(t *testing.T) {
	// DecodeFrame already guarded the header slice; it must also report
	// template bodies that cannot fit the claimed frame as malformed, not
	// as a retryable short read.
	buf := append([]byte{8, 0, 0xFE, 0xCA, 0x02, 0x02, 3, 0}, make([]byte, 8)...) // templateNew, empty body
	_, n, err := DecodeFrame(buf)
	if err == nil || errors.Is(err, ErrILinkShort) || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if !errors.Is(err, ErrILinkMalformed) {
		t.Fatalf("err = %v, want ErrILinkMalformed", err)
	}
}

func TestSessionRoundTrips(t *testing.T) {
	cases := []struct {
		buf      []byte
		template uint16
	}{
		{AppendNegotiate(nil, 7, 9), templateNegotiate},
		{AppendNegotiateResponse(nil, 7, 9), templateNegotiateResponse},
		{AppendEstablish(nil, 7, 9, 250), templateEstablish},
		{AppendEstablishAck(nil, 7, 42, 250), templateEstablishAck},
		{AppendSequence(nil, 7, 42), templateSequence},
		{AppendTerminate(nil, 7, TerminateKeepAliveExpired), templateTerminate},
	}
	for _, c := range cases {
		f, n, err := DecodeSessionFrame(c.buf)
		if err != nil || n != len(c.buf) || f.Template != c.template || f.UUID != 7 {
			t.Fatalf("template %d: %+v n=%d err=%v", c.template, f, n, err)
		}
	}
}

package orderentry

import (
	"reflect"
	"testing"
	"testing/quick"

	"lighttrader/internal/exchange"
	"lighttrader/internal/lob"
)

func TestFIXNewOrderRoundTrip(t *testing.T) {
	s := NewFIXSession("LIGHT", "CME")
	raw := s.NewOrderSingle(42, "ESU6", true, 450025, 3, "20260705-12:00:00")
	msg, err := ParseFIX(raw)
	if err != nil {
		t.Fatalf("ParseFIX: %v\nraw: %q", err, raw)
	}
	if msg.MsgType() != MsgNewOrderSingle {
		t.Fatalf("msg type = %q", msg.MsgType())
	}
	checks := map[int]string{11: "42", 38: "3", 44: "450025", 54: "1", 55: "ESU6", 49: "LIGHT", 56: "CME", 34: "1"}
	for tag, want := range checks {
		if got, ok := msg.Get(tag); !ok || got != want {
			t.Fatalf("tag %d = %q, %v; want %q", tag, got, ok, want)
		}
	}
}

func TestFIXSequenceIncrements(t *testing.T) {
	s := NewFIXSession("A", "B")
	_ = s.NewOrderSingle(1, "ES", true, 1, 1, "t")
	raw := s.OrderCancelRequest(2, 1, "ES", "t")
	msg, err := ParseFIX(raw)
	if err != nil {
		t.Fatal(err)
	}
	if seq, _ := msg.Get(34); seq != "2" {
		t.Fatalf("seq = %s, want 2", seq)
	}
	if orig, _ := msg.Get(41); orig != "1" {
		t.Fatalf("orig = %s, want 1", orig)
	}
}

func TestFIXCancelReplaceAndExecReport(t *testing.T) {
	s := NewFIXSession("A", "B")
	msg, err := ParseFIX(s.OrderCancelReplace(3, 2, "ES", 100, 5, "t"))
	if err != nil || msg.MsgType() != MsgOrderCancelReplace {
		t.Fatalf("replace: %v %q", err, msg.MsgType())
	}
	msg, err = ParseFIX(s.ExecutionReport(3, 'F', "ES", 100, 5, "t"))
	if err != nil || msg.MsgType() != MsgExecutionReport {
		t.Fatalf("exec report: %v %q", err, msg.MsgType())
	}
	if et, _ := msg.Get(150); et != "F" {
		t.Fatalf("exec type = %q", et)
	}
}

func TestFIXChecksumRejected(t *testing.T) {
	s := NewFIXSession("A", "B")
	raw := s.NewOrderSingle(1, "ES", true, 1, 1, "t")
	raw[20] ^= 0x01 // flip a bit inside the body
	if _, err := ParseFIX(raw); err == nil {
		t.Fatal("corrupted message accepted")
	}
}

func TestFIXMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("garbage"),
		[]byte("8=FIX.4.4\x01"),
		[]byte("x=1\x01"),
		[]byte("8=FIX.4.4\x019=5\x0135=D\x0110=000\x01"), // wrong body length
	}
	for i, c := range cases {
		if _, err := ParseFIX(c); err == nil {
			t.Fatalf("case %d accepted: %q", i, c)
		}
	}
}

func TestILinkNewOrderRoundTrip(t *testing.T) {
	req := exchange.Request{
		Kind: exchange.ReqNew, SecurityID: 7, ClOrdID: 99,
		Side: lob.Ask, Type: exchange.Limit, Price: 450025, Qty: 12,
	}
	buf := AppendRequest(nil, req)
	frame, n, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) || frame.Request == nil {
		t.Fatalf("n=%d frame=%+v", n, frame)
	}
	if !reflect.DeepEqual(*frame.Request, req) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", *frame.Request, req)
	}
}

func TestILinkMarketOrder(t *testing.T) {
	req := exchange.Request{Kind: exchange.ReqNew, SecurityID: 1, ClOrdID: 1,
		Side: lob.Bid, Type: exchange.Market, Qty: 2}
	frame, _, err := DecodeFrame(AppendRequest(nil, req))
	if err != nil {
		t.Fatal(err)
	}
	if frame.Request.Type != exchange.Market || frame.Request.Side != lob.Bid {
		t.Fatalf("frame = %+v", frame.Request)
	}
}

func TestILinkCancelReplaceRoundTrip(t *testing.T) {
	for _, req := range []exchange.Request{
		{Kind: exchange.ReqCancel, SecurityID: 7, ClOrdID: 5},
		{Kind: exchange.ReqReplace, SecurityID: 7, ClOrdID: 5, NewClOrdID: 6, Price: -3, Qty: 9},
	} {
		frame, _, err := DecodeFrame(AppendRequest(nil, req))
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		got := *frame.Request
		if got.Kind != req.Kind || got.ClOrdID != req.ClOrdID || got.NewClOrdID != req.NewClOrdID ||
			got.Price != req.Price || got.Qty != req.Qty || got.SecurityID != req.SecurityID {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, req)
		}
	}
}

func TestILinkExecAckRoundTrip(t *testing.T) {
	ack := ExecAck{ClOrdID: 7, Price: 100, Qty: 3, SecurityID: 9, Exec: exchange.ExecFilled}
	frame, _, err := DecodeFrame(AppendExecAck(nil, ack))
	if err != nil {
		t.Fatal(err)
	}
	if frame.Ack == nil || *frame.Ack != ack {
		t.Fatalf("round trip: %+v", frame.Ack)
	}
}

func TestILinkStreamFraming(t *testing.T) {
	// Two frames back to back must decode sequentially.
	var buf []byte
	buf = AppendRequest(buf, exchange.Request{Kind: exchange.ReqNew, ClOrdID: 1, Side: lob.Bid, Price: 1, Qty: 1})
	buf = AppendRequest(buf, exchange.Request{Kind: exchange.ReqCancel, ClOrdID: 1})
	f1, n1, err := DecodeFrame(buf)
	if err != nil || f1.Request.Kind != exchange.ReqNew {
		t.Fatalf("first: %v %+v", err, f1)
	}
	f2, n2, err := DecodeFrame(buf[n1:])
	if err != nil || f2.Request.Kind != exchange.ReqCancel {
		t.Fatalf("second: %v %+v", err, f2)
	}
	if n1+n2 != len(buf) {
		t.Fatalf("consumed %d of %d", n1+n2, len(buf))
	}
}

func TestILinkErrors(t *testing.T) {
	if _, _, err := DecodeFrame([]byte{1}); err != ErrILinkShort {
		t.Fatalf("short: %v", err)
	}
	buf := AppendRequest(nil, exchange.Request{Kind: exchange.ReqCancel, ClOrdID: 1})
	if _, _, err := DecodeFrame(buf[:len(buf)-2]); err != ErrILinkShort {
		t.Fatalf("truncated: %v", err)
	}
	bad := append([]byte(nil), buf...)
	bad[2] = 0
	if _, _, err := DecodeFrame(bad); err == nil {
		t.Fatal("bad encoding accepted")
	}
	bad = append([]byte(nil), buf...)
	bad[4] = 0xff
	if _, _, err := DecodeFrame(bad); err == nil {
		t.Fatal("bad template accepted")
	}
}

// TestQuickILinkRoundTrip fuzzes new-order frames.
func TestQuickILinkRoundTrip(t *testing.T) {
	f := func(clOrdID uint64, price int64, secID int32, qty uint32, buy, market bool) bool {
		req := exchange.Request{Kind: exchange.ReqNew, ClOrdID: clOrdID, Price: price,
			SecurityID: secID, Qty: int64(qty)}
		if buy {
			req.Side = lob.Bid
		} else {
			req.Side = lob.Ask
		}
		if market {
			req.Type = exchange.Market
		}
		frame, _, err := DecodeFrame(AppendRequest(nil, req))
		return err == nil && frame.Request != nil && reflect.DeepEqual(*frame.Request, req)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFIXEncode(b *testing.B) {
	s := NewFIXSession("LIGHT", "CME")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.NewOrderSingle(uint64(i), "ESU6", true, 450025, 3, "20260705-12:00:00")
	}
}

func BenchmarkILinkDecode(b *testing.B) {
	buf := AppendRequest(nil, exchange.Request{Kind: exchange.ReqNew, ClOrdID: 1,
		Side: lob.Bid, Price: 450025, Qty: 3, SecurityID: 7})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeFrame(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// Package orderentry implements the order-entry protocols named in the
// paper (§III-A): the FIX tag-value message protocol and a CME iLink 3
// style binary order-entry format. The trading engine stores pre-built
// message templates and patches only the variable fields, mirroring the
// paper's template-in-SRAM design.
package orderentry

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
)

// SOH is the FIX field delimiter.
const SOH = '\x01'

// FIX message types used by the pipeline.
const (
	MsgNewOrderSingle     = "D"
	MsgOrderCancelRequest = "F"
	MsgOrderCancelReplace = "G"
	MsgExecutionReport    = "8"
)

// FIX tag numbers used by the pipeline.
const (
	tagBeginString  = 8
	tagBodyLength   = 9
	tagCheckSum     = 10
	tagClOrdID      = 11
	tagMsgSeqNum    = 34
	tagMsgType      = 35
	tagOrderQty     = 38
	tagOrdType      = 40
	tagOrigClOrdID  = 41
	tagPrice        = 44
	tagSenderCompID = 49
	tagSendingTime  = 52
	tagSide         = 54
	tagSymbol       = 55
	tagTargetCompID = 56
	tagExecType     = 150
)

// Field is one tag=value pair.
type Field struct {
	Tag   int
	Value string
}

// FIXMessage is a parsed FIX message: ordered fields excluding the
// BeginString/BodyLength/CheckSum envelope.
type FIXMessage struct {
	Fields []Field
}

// Get returns the first value for tag.
func (m *FIXMessage) Get(tag int) (string, bool) {
	for _, f := range m.Fields {
		if f.Tag == tag {
			return f.Value, true
		}
	}
	return "", false
}

// MsgType returns tag 35.
func (m *FIXMessage) MsgType() string {
	v, _ := m.Get(tagMsgType)
	return v
}

// FIXSession encodes application messages with session-level framing
// (sequence numbers, comp ids, checksum).
type FIXSession struct {
	Sender string
	Target string
	seq    uint64
	buf    bytes.Buffer
}

// NewFIXSession returns a session with sequence numbers starting at 1.
func NewFIXSession(sender, target string) *FIXSession {
	return &FIXSession{Sender: sender, Target: target}
}

// NewOrderSingle encodes a 35=D message. side follows FIX: '1' buy, '2'
// sell. Prices and quantities are integer ticks/lots rendered in decimal.
func (s *FIXSession) NewOrderSingle(clOrdID uint64, symbol string, buy bool, price, qty int64, sendingTime string) []byte {
	side := "2"
	if buy {
		side = "1"
	}
	return s.encode(MsgNewOrderSingle, sendingTime, []Field{
		{tagClOrdID, strconv.FormatUint(clOrdID, 10)},
		{tagOrderQty, strconv.FormatInt(qty, 10)},
		{tagOrdType, "2"}, // limit
		{tagPrice, strconv.FormatInt(price, 10)},
		{tagSide, side},
		{tagSymbol, symbol},
	})
}

// OrderCancelRequest encodes a 35=F message.
func (s *FIXSession) OrderCancelRequest(clOrdID, origClOrdID uint64, symbol, sendingTime string) []byte {
	return s.encode(MsgOrderCancelRequest, sendingTime, []Field{
		{tagClOrdID, strconv.FormatUint(clOrdID, 10)},
		{tagOrigClOrdID, strconv.FormatUint(origClOrdID, 10)},
		{tagSymbol, symbol},
	})
}

// OrderCancelReplace encodes a 35=G message.
func (s *FIXSession) OrderCancelReplace(clOrdID, origClOrdID uint64, symbol string, price, qty int64, sendingTime string) []byte {
	return s.encode(MsgOrderCancelReplace, sendingTime, []Field{
		{tagClOrdID, strconv.FormatUint(clOrdID, 10)},
		{tagOrigClOrdID, strconv.FormatUint(origClOrdID, 10)},
		{tagOrderQty, strconv.FormatInt(qty, 10)},
		{tagPrice, strconv.FormatInt(price, 10)},
		{tagSymbol, symbol},
	})
}

// ExecutionReport encodes a 35=8 message (used by the exchange simulator).
func (s *FIXSession) ExecutionReport(clOrdID uint64, execType byte, symbol string, price, qty int64, sendingTime string) []byte {
	return s.encode(MsgExecutionReport, sendingTime, []Field{
		{tagClOrdID, strconv.FormatUint(clOrdID, 10)},
		{tagExecType, string(execType)},
		{tagOrderQty, strconv.FormatInt(qty, 10)},
		{tagPrice, strconv.FormatInt(price, 10)},
		{tagSymbol, symbol},
	})
}

// encode assembles header+body+trailer. The body fields are emitted in the
// order provided after the standard header tags.
func (s *FIXSession) encode(msgType, sendingTime string, body []Field) []byte {
	s.seq++
	s.buf.Reset()
	writeField := func(b *bytes.Buffer, tag int, val string) {
		b.WriteString(strconv.Itoa(tag))
		b.WriteByte('=')
		b.WriteString(val)
		b.WriteByte(SOH)
	}
	var inner bytes.Buffer
	writeField(&inner, tagMsgType, msgType)
	writeField(&inner, tagMsgSeqNum, strconv.FormatUint(s.seq, 10))
	writeField(&inner, tagSenderCompID, s.Sender)
	writeField(&inner, tagTargetCompID, s.Target)
	writeField(&inner, tagSendingTime, sendingTime)
	for _, f := range body {
		writeField(&inner, f.Tag, f.Value)
	}
	writeField(&s.buf, tagBeginString, "FIX.4.4")
	writeField(&s.buf, tagBodyLength, strconv.Itoa(inner.Len()))
	s.buf.Write(inner.Bytes())
	sum := 0
	for _, c := range s.buf.Bytes() {
		sum += int(c)
	}
	writeField(&s.buf, tagCheckSum, fmt.Sprintf("%03d", sum%256))
	out := make([]byte, s.buf.Len())
	copy(out, s.buf.Bytes())
	return out
}

// FIX parsing errors.
var (
	ErrFIXMalformed = errors.New("orderentry: malformed FIX message")
	ErrFIXChecksum  = errors.New("orderentry: FIX checksum mismatch")
)

// ParseFIX validates the envelope (BeginString, BodyLength, CheckSum) and
// returns the application fields.
func ParseFIX(raw []byte) (*FIXMessage, error) {
	fields, err := splitFIX(raw)
	if err != nil {
		return nil, err
	}
	if len(fields) < 4 || fields[0].Tag != tagBeginString || fields[1].Tag != tagBodyLength {
		return nil, ErrFIXMalformed
	}
	last := fields[len(fields)-1]
	if last.Tag != tagCheckSum {
		return nil, ErrFIXMalformed
	}
	bodyLen, err := strconv.Atoi(fields[1].Value)
	if err != nil {
		return nil, fmt.Errorf("%w: bad body length", ErrFIXMalformed)
	}
	// Verify checksum over everything before the CheckSum field.
	checkStart := bytes.LastIndex(raw, []byte("\x0110="))
	if checkStart < 0 {
		return nil, ErrFIXMalformed
	}
	checkStart++ // keep the SOH terminating the previous field
	sum := 0
	for _, c := range raw[:checkStart] {
		sum += int(c)
	}
	want, err := strconv.Atoi(last.Value)
	if err != nil || sum%256 != want {
		return nil, ErrFIXChecksum
	}
	// Verify body length: bytes between the BodyLength field's SOH and the
	// CheckSum tag.
	headerEnd := fieldEnd(raw, 2)
	if headerEnd < 0 || checkStart-headerEnd != bodyLen {
		return nil, fmt.Errorf("%w: body length %d != declared %d", ErrFIXMalformed, checkStart-headerEnd, bodyLen)
	}
	return &FIXMessage{Fields: fields[2 : len(fields)-1]}, nil
}

// fieldEnd returns the byte offset just past the nth field (1-based count).
func fieldEnd(raw []byte, n int) int {
	off := 0
	for i := 0; i < n; i++ {
		j := bytes.IndexByte(raw[off:], SOH)
		if j < 0 {
			return -1
		}
		off += j + 1
	}
	return off
}

func splitFIX(raw []byte) ([]Field, error) {
	if len(raw) == 0 || raw[len(raw)-1] != SOH {
		return nil, ErrFIXMalformed
	}
	var fields []Field
	for len(raw) > 0 {
		j := bytes.IndexByte(raw, SOH)
		pair := raw[:j]
		raw = raw[j+1:]
		eq := bytes.IndexByte(pair, '=')
		if eq <= 0 {
			return nil, ErrFIXMalformed
		}
		tag, err := strconv.Atoi(string(pair[:eq]))
		if err != nil {
			return nil, fmt.Errorf("%w: bad tag %q", ErrFIXMalformed, pair[:eq])
		}
		fields = append(fields, Field{Tag: tag, Value: string(pair[eq+1:])})
	}
	return fields, nil
}

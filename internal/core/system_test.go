package core

import (
	"testing"

	"lighttrader/internal/feed"
	"lighttrader/internal/nn"
	"lighttrader/internal/sim"
)

// burstyQueries builds a deterministic bursty tick trace for system tests.
func burstyQueries(t *testing.T, n int, tAvail int64) []sim.Query {
	t.Helper()
	gen, err := feed.NewGenerator(feed.DefaultGeneratorConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sim.QueriesFromTicks(gen.Generate(n), tAvail)
}

func mustSystem(t *testing.T, m *nn.Model, n int, pc PowerCondition, opts Options) *System {
	t.Helper()
	cfg, err := Configure(m, n, pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSystemAccountsEveryQuery(t *testing.T) {
	queries := burstyQueries(t, 3000, 1_000_000)
	for _, opts := range []Options{
		{},
		{WorkloadScheduling: true},
		{DVFSScheduling: true},
		{WorkloadScheduling: true, DVFSScheduling: true},
	} {
		sys := mustSystem(t, nn.NewVanillaCNN(), 2, Sufficient, opts)
		m := sim.Run(queries, sys)
		if m.Unaccounted != 0 {
			t.Fatalf("%s: %d unaccounted queries (%+v)", sys.Name(), m.Unaccounted, m)
		}
		if m.Responded == 0 {
			t.Fatalf("%s: nothing responded", sys.Name())
		}
		if m.EnergyJoules <= 0 {
			t.Fatalf("%s: energy %v", sys.Name(), m.EnergyJoules)
		}
	}
}

func TestSystemDeterministic(t *testing.T) {
	queries := burstyQueries(t, 2000, 1_000_000)
	opts := Options{WorkloadScheduling: true, DVFSScheduling: true}
	m1 := sim.Run(queries, mustSystem(t, nn.NewDeepLOB(), 4, Limited, opts))
	m2 := sim.Run(queries, mustSystem(t, nn.NewDeepLOB(), 4, Limited, opts))
	if m1 != m2 {
		t.Fatalf("non-deterministic run:\n%+v\n%+v", m1, m2)
	}
}

func TestMoreAcceleratorsImproveResponse(t *testing.T) {
	queries := burstyQueries(t, 4000, 1_000_000)
	r1 := sim.Run(queries, mustSystem(t, nn.NewDeepLOB(), 1, Sufficient, Options{})).ResponseRate
	r4 := sim.Run(queries, mustSystem(t, nn.NewDeepLOB(), 4, Sufficient, Options{})).ResponseRate
	if r4 <= r1 {
		t.Fatalf("response rate did not improve with accelerators: N=1 %.3f vs N=4 %.3f", r1, r4)
	}
}

func TestWorkloadSchedulingHelpsSmallN(t *testing.T) {
	// Fig. 13's first observation: WS cuts the miss rate when a small
	// accelerator count cannot absorb bursts at batch 1.
	queries := burstyQueries(t, 5000, 1_000_000)
	base := sim.Run(queries, mustSystem(t, nn.NewDeepLOB(), 1, Sufficient, Options{}))
	ws := sim.Run(queries, mustSystem(t, nn.NewDeepLOB(), 1, Sufficient, Options{WorkloadScheduling: true}))
	if ws.MissRate >= base.MissRate {
		t.Fatalf("WS did not reduce miss rate: baseline %.4f vs WS %.4f", base.MissRate, ws.MissRate)
	}
	if ws.MeanBatch <= base.MeanBatch {
		t.Fatalf("WS mean batch %.2f not above baseline %.2f", ws.MeanBatch, base.MeanBatch)
	}
}

func TestLatencyMatchesConfiguredPipeline(t *testing.T) {
	// An isolated query's tick-to-trade must equal the configured
	// pipeline latency (pre + t_total at the static state).
	cfg, err := Configure(nn.NewVanillaCNN(), 1, Sufficient, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := []sim.Query{{ID: 0, ArrivalNanos: 1000, DeadlineNanos: 10_000_000}}
	m := sim.Run(queries, sys)
	if m.Responded != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	want := cfg.TickToTradeNanos()
	if m.MeanLatencyNanos != want {
		t.Fatalf("isolated latency %d ns != configured %d ns", m.MeanLatencyNanos, want)
	}
}

func TestQueueEvictionUnderFlood(t *testing.T) {
	cfg, err := Configure(nn.NewDeepLOB(), 1, Limited, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxQueue = 4
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 200 simultaneous-ish arrivals against a ~300 µs service: most must
	// be evicted or deferred, none lost.
	queries := make([]sim.Query, 200)
	for i := range queries {
		queries[i] = sim.Query{ID: int64(i), ArrivalNanos: int64(i), DeadlineNanos: int64(i) + 2_000_000}
	}
	m := sim.Run(queries, sys)
	if m.Unaccounted != 0 {
		t.Fatalf("unaccounted = %d", m.Unaccounted)
	}
	if m.Dropped == 0 {
		t.Fatal("flood produced no drops")
	}
}

func TestProbeAttributionAccountsEveryMiss(t *testing.T) {
	// Overload a small system so all three miss causes can occur, and check
	// the tracer classifies every miss into exactly one cause: the class
	// counts must sum to Metrics.Dropped + Metrics.Late.
	queries := burstyQueries(t, 5000, 600_000)
	for _, opts := range []Options{
		{},
		{WorkloadScheduling: true, DVFSScheduling: true},
	} {
		cfg, err := Configure(nn.NewDeepLOB(), 2, Limited, opts)
		if err != nil {
			t.Fatal(err)
		}
		cfg.MaxQueue = 8 // force stale-tensor evictions under bursts
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr := sim.NewTracer()
		m := sim.RunWithOptions(queries, sys, sim.WithProbe(tr))
		if m.Dropped == 0 {
			t.Fatalf("%s: overload produced no drops", sys.Name())
		}
		a := tr.Attribution()
		if a.DeferredOther != 0 {
			t.Fatalf("%s: %d uncaused defers (core must always attach a verdict)", sys.Name(), a.DeferredOther)
		}
		if a.Evicted+a.DeferredDeadline+a.DeferredPower != m.Dropped {
			t.Fatalf("%s: evicted %d + deferred %d/%d != dropped %d",
				sys.Name(), a.Evicted, a.DeferredDeadline, a.DeferredPower, m.Dropped)
		}
		if a.Late != m.Late {
			t.Fatalf("%s: late %d != metrics late %d", sys.Name(), a.Late, m.Late)
		}
		if a.Total() != m.Dropped+m.Late {
			t.Fatalf("%s: attribution %+v does not sum to %d misses", sys.Name(), a, m.Dropped+m.Late)
		}
		if tr.Arrived() != m.Total {
			t.Fatalf("%s: arrived %d != total %d", sys.Name(), tr.Arrived(), m.Total)
		}
	}
}

func TestProbeIsObserveOnly(t *testing.T) {
	// The determinism invariant: attaching a probe must not change a run.
	queries := burstyQueries(t, 3000, 1_000_000)
	opts := Options{WorkloadScheduling: true, DVFSScheduling: true}
	bare := sim.Run(queries, mustSystem(t, nn.NewDeepLOB(), 4, Limited, opts))
	traced := sim.RunWithOptions(queries, mustSystem(t, nn.NewDeepLOB(), 4, Limited, opts),
		sim.WithProbe(sim.NewTracer()))
	if bare != traced {
		t.Fatalf("instrumented run diverged:\nbare   %+v\ntraced %+v", bare, traced)
	}
}

func TestProbeObservesDVFSAndLoad(t *testing.T) {
	queries := burstyQueries(t, 4000, 20_000_000)
	sys := mustSystem(t, nn.NewDeepLOB(), 4, Limited,
		Options{WorkloadScheduling: true, DVFSScheduling: true})
	tr := sim.NewTracer()
	_ = sim.RunWithOptions(queries, sys, sim.WithProbe(tr))
	if tr.DVFSTransitions(sim.DVFSPark) == 0 {
		t.Fatal("DS never parked an idle accelerator")
	}
	if tr.DVFSTransitions(sim.DVFSAtIssue)+tr.DVFSTransitions(sim.DVFSRedistribute) == 0 {
		t.Fatal("no issue/redistribute DVFS transitions observed")
	}
	p := tr.PowerStats()
	if p.Samples == 0 || p.Max <= 0 {
		t.Fatalf("power series empty: %+v", p)
	}
	// The sampled peak must agree with the system's own budget accounting.
	if p.Max > sys.MaxObservedPowerWatts()+1e-9 {
		t.Fatalf("sampled peak %.2f W above system max %.2f W", p.Max, sys.MaxObservedPowerWatts())
	}
	q := tr.QueueStats()
	if q.Samples == 0 {
		t.Fatal("queue series empty")
	}
}

func TestConfigureValidation(t *testing.T) {
	if _, err := NewSystem(SystemConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg, err := Configure(nn.NewVanillaCNN(), 0, Sufficient, Options{})
	if err == nil {
		if _, err := NewSystem(cfg); err == nil {
			t.Fatal("zero accelerators accepted")
		}
	}
}

func TestTickToTradeAroundPaperValues(t *testing.T) {
	// Fig. 11a: 119/160/296 µs inference for CNN/TransLOB/DeepLOB; our
	// tick-to-trade adds ≈1 µs of pipeline. Check within ±25%.
	wants := map[string]float64{"VanillaCNN": 119_000, "TransLOB": 160_000, "DeepLOB": 296_000}
	for _, m := range nn.BenchmarkModels() {
		cfg, err := Configure(m, 1, Sufficient, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := float64(cfg.TickToTradeNanos())
		want := wants[m.Name()]
		if got < want*0.75 || got > want*1.25 {
			t.Fatalf("%s tick-to-trade %.0f ns, want ≈%.0f ±25%%", m.Name(), got, want)
		}
	}
}

func TestPowerBudgetRespected(t *testing.T) {
	queries := burstyQueries(t, 4000, 20_000_000)
	for _, pc := range []PowerCondition{Sufficient, Limited} {
		for _, n := range []int{1, 4, 16} {
			for _, opts := range []Options{
				{},
				{WorkloadScheduling: true, DVFSScheduling: true},
			} {
				sys := mustSystem(t, nn.NewDeepLOB(), n, pc, opts)
				_ = sim.Run(queries, sys)
				if got := sys.MaxObservedPowerWatts(); got > pc.AccelBudgetWatts*1.02 {
					t.Fatalf("%s: peak draw %.2f W exceeds budget %.1f W",
						sys.Name(), got, pc.AccelBudgetWatts)
				}
				if sys.MaxObservedPowerWatts() <= 0 {
					t.Fatalf("%s: no power observed", sys.Name())
				}
			}
		}
	}
}

func TestDVFSSchedulingSavesEnergy(t *testing.T) {
	// DS parks idle accelerators at the power floor, so with many mostly-
	// idle accelerators it must consume far less energy than the static
	// configuration for the same work.
	queries := burstyQueries(t, 4000, 20_000_000)
	static := sim.Run(queries, mustSystem(t, nn.NewTransLOB(), 8, Limited, Options{}))
	ds := sim.Run(queries, mustSystem(t, nn.NewTransLOB(), 8, Limited, Options{DVFSScheduling: true}))
	if ds.EnergyJoules >= static.EnergyJoules*0.8 {
		t.Fatalf("DS energy %.1f J not well below static %.1f J", ds.EnergyJoules, static.EnergyJoules)
	}
}

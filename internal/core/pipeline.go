package core

import (
	"fmt"
	"time"

	"lighttrader/internal/exchange"
	"lighttrader/internal/latency"
	"lighttrader/internal/lob"
	"lighttrader/internal/nn"
	"lighttrader/internal/offload"
	"lighttrader/internal/sbe"
	"lighttrader/internal/tensor"
	"lighttrader/internal/trading"
)

// Pipeline is the functional tick-to-trade path (paper Fig. 2b / Fig. 4b):
// market-data packet → SBE parse → local book update → offload engine →
// DNN inference → trading engine → order request. It runs the real DNN
// forward pass in software — the accelerator latency model does not apply
// here; this path exists so the system is a working trading stack, used by
// the quickstart and live-wire examples and the integration tests.
type Pipeline struct {
	securityID int32
	model      *nn.Model
	offl       *offload.Engine
	trader     *trading.Engine

	// predict, when set, replaces the model forward pass — the hook the
	// tick-path benchmarks and the modelled-accelerator harnesses use to
	// measure the conventional pipeline without running inference inline.
	predict func(t *tensor.Tensor) (nn.Direction, float32, error)

	// sig, when set, receives every inference result (the signal-gateway
	// publish hook). Called inline on the tick path, so implementations
	// must be non-blocking and allocation-free.
	sig SignalHook

	// ladder holds the degrade ladder's functional models (tier t > 0 is
	// ladder[t-1]); tier selects which one answers the next forward pass.
	// Both are plain fields set by the serving lane under its dispatch lock,
	// so switching tiers costs one store and zero allocations.
	ladder []*nn.Model
	tier   int

	// Local market-by-price book mirror: the HFT-side LOB of §II-A,
	// reconstructed from incremental refresh messages.
	bids      [lob.DepthLevels]lob.Level
	asks      [lob.DepthLevels]lob.Level
	lastTrade int64
	seq       uint64
	symbol    string

	ticks      int
	inferences int

	// ordersBuf backs the slice OnDecodedPacket returns, reused across
	// packets so steady-state order generation does not allocate.
	ordersBuf []exchange.Request

	// lat, when set, records each OnDecodedPacket call's wall duration:
	// the book-update → feature → decision stages of the tick path.
	lat *latency.Histogram
}

// NewPipeline assembles the functional pipeline.
func NewPipeline(symbol string, securityID int32, model *nn.Model, norm offload.Normalizer, tcfg trading.Config) (*Pipeline, error) {
	trader, err := trading.NewEngine(tcfg)
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		securityID: securityID,
		symbol:     symbol,
		model:      model,
		offl:       offload.NewEngine(norm, 64),
		trader:     trader,
	}, nil
}

// Trader exposes the trading engine (position, decision log).
func (p *Pipeline) Trader() *trading.Engine { return p.trader }

// SecurityID returns the instrument this pipeline is subscribed to.
func (p *Pipeline) SecurityID() int32 { return p.securityID }

// Symbol returns the subscribed instrument's symbol.
func (p *Pipeline) Symbol() string { return p.symbol }

// Model returns the pipeline's inference model (used to compile latency
// tables when the serving runtime schedules this subscription).
func (p *Pipeline) Model() *nn.Model { return p.model }

// SetLatency attaches a histogram recording each OnDecodedPacket call's
// wall-clock duration (book update through trading decision). nil detaches.
func (p *Pipeline) SetLatency(hist *latency.Histogram) { p.lat = hist }

// SetModelLadder attaches the degrade ladder's functional models: tier
// t > 0 selects models[t-1] for the forward pass, tier 0 (and any nil
// entry) keeps the primary model. Every entry must share the primary
// model's input shape — the offload engine assembles one feature-map
// format; cheaper zoo variants crop inside the network (nn.WindowCrop).
// The active tier resets to the primary model.
func (p *Pipeline) SetModelLadder(models []*nn.Model) {
	p.ladder = models
	p.tier = 0
}

// SetActiveTier selects the model the next forward pass runs: 0 is the
// primary model, t > 0 the t-th ladder entry. Out-of-range tiers (and nil
// ladder entries) fall back to the primary model, so a tier-aware engine
// can set the admission tier unconditionally. Callers synchronise with
// dispatch (the serving lane holds its processing lock).
func (p *Pipeline) SetActiveTier(tier int) { p.tier = tier }

// activeModel resolves the tier selection to the model answering the next
// forward pass.
func (p *Pipeline) activeModel() *nn.Model {
	if p.tier > 0 && p.tier <= len(p.ladder) {
		if m := p.ladder[p.tier-1]; m != nil {
			return m
		}
	}
	return p.model
}

// SetPredictor replaces the model forward pass with fn (nil restores the
// model). The offload engine still assembles feature maps; fn receives each
// ready input tensor in place of nn.Model.Predict — this is how the
// tick-to-trade benchmarks model the accelerator answering off the hot path.
func (p *Pipeline) SetPredictor(fn func(t *tensor.Tensor) (nn.Direction, float32, error)) {
	p.predict = fn
}

// SignalEvent is one inference result as seen on the tick path: the
// prediction plus the top-of-book context it was made from. It is a flat
// value type (no pointers into pipeline state) so handing it to a hook
// cannot make anything escape to the heap — the tick path stays 0-alloc.
type SignalEvent struct {
	// Action is the predicted direction; Confidence its probability.
	Action     nn.Direction
	Confidence float32
	// Top-of-book at prediction time.
	BidPrice, BidQty int64
	AskPrice, AskQty int64
	LastTrade        int64
	// TickNanos is the book-event time the prediction was made from.
	TickNanos int64
}

// SignalHook receives every inference result, inline on the tick path.
// Implementations must never block and never allocate (the signal
// gateway's Publisher.Publish satisfies both).
type SignalHook func(SignalEvent)

// SetSignalHook installs fn as the pipeline's inference-result listener
// (nil detaches). The hook runs on the tick path after the trading
// decision; its cost is added to tick-to-trade latency, which is why the
// contract demands non-blocking, 0-alloc implementations.
func (p *Pipeline) SetSignalHook(fn SignalHook) { p.sig = fn }

// Ticks returns how many book-updating events have been processed.
func (p *Pipeline) Ticks() int { return p.ticks }

// Inferences returns how many DNN forward passes have run.
func (p *Pipeline) Inferences() int { return p.inferences }

// Snapshot returns the current local book state.
func (p *Pipeline) Snapshot(timeNanos int64) lob.Snapshot {
	return lob.Snapshot{
		Symbol: p.symbol, Seq: p.seq, TimeNanos: timeNanos,
		Bids: p.bids, Asks: p.asks, LastTrade: p.lastTrade,
	}
}

// OnPacket processes one market-data datagram end to end, returning any
// order requests the trading engine generated.
func (p *Pipeline) OnPacket(buf []byte) ([]exchange.Request, error) {
	pkt, err := sbe.DecodePacket(buf)
	if err != nil {
		return nil, fmt.Errorf("core: packet parse: %w", err)
	}
	return p.OnDecodedPacket(pkt)
}

// OnDecodedPacket processes an already-decoded packet (the arbitrated-feed
// path, where mdclient has parsed and ordered the datagrams). The returned
// slice is backed by the pipeline's reusable buffer: it is valid until the
// next OnDecodedPacket/OnPacket call, and callers that keep orders longer
// must copy them out (every in-tree caller appends into its own storage).
func (p *Pipeline) OnDecodedPacket(pkt sbe.Packet) ([]exchange.Request, error) {
	if p.lat != nil {
		start := time.Now()
		defer func() { p.lat.Record(time.Since(start).Nanoseconds()) }()
	}
	orders := p.ordersBuf[:0]
	defer func() { p.ordersBuf = orders[:0] }()
	for _, msg := range pkt.Messages {
		switch {
		case msg.Incremental != nil:
			// Only updates for this pipeline's instrument generate a tick;
			// a shared channel carries other securities too.
			if p.applyIncremental(msg.Incremental) == 0 {
				continue
			}
			var err error
			orders, err = p.onTick(int64(msg.Incremental.TransactTime), orders)
			if err != nil {
				return orders, err
			}
		case msg.Trade != nil:
			if msg.Trade.SecurityID == p.securityID || msg.Trade.SecurityID == 0 {
				p.lastTrade = msg.Trade.Price
			}
		case msg.Snapshot != nil:
			if msg.Snapshot.SecurityID == p.securityID || msg.Snapshot.SecurityID == 0 {
				p.applySnapshot(msg.Snapshot)
			}
		}
	}
	return orders, nil
}

// applyIncremental folds level updates into the local book mirror,
// returning how many entries applied to this instrument.
func (p *Pipeline) applyIncremental(m *sbe.IncrementalRefresh) int {
	applied := 0
	for _, e := range m.Entries {
		if e.SecurityID != p.securityID && e.SecurityID != 0 {
			continue
		}
		lvl := int(e.Level) - 1
		if lvl < 0 || lvl >= lob.DepthLevels {
			continue
		}
		side := &p.bids
		if e.Entry == sbe.EntryAsk {
			side = &p.asks
		} else if e.Entry == sbe.EntryTrade {
			continue
		}
		switch e.Action {
		case sbe.ActionNew, sbe.ActionChange:
			side[lvl] = lob.Level{Price: e.Price, Qty: int64(e.Qty)}
		case sbe.ActionDelete:
			side[lvl] = lob.Level{}
		}
		p.seq++
		applied++
	}
	return applied
}

// applySnapshot replaces the local book from a full refresh.
func (p *Pipeline) applySnapshot(m *sbe.SnapshotFullRefresh) {
	p.bids = [lob.DepthLevels]lob.Level{}
	p.asks = [lob.DepthLevels]lob.Level{}
	for _, e := range m.Entries {
		lvl := int(e.Level) - 1
		if lvl < 0 || lvl >= lob.DepthLevels {
			continue
		}
		l := lob.Level{Price: e.Price, Qty: int64(e.Qty)}
		if e.Entry == sbe.EntryBid {
			p.bids[lvl] = l
		} else if e.Entry == sbe.EntryAsk {
			p.asks[lvl] = l
		}
	}
	p.seq++
}

// onTick pushes the post-update snapshot through offload → inference →
// trading, appending any generated orders to dst.
func (p *Pipeline) onTick(timeNanos int64, dst []exchange.Request) ([]exchange.Request, error) {
	p.ticks++
	snap := p.Snapshot(timeNanos)
	p.offl.Push(snap)
	for {
		in, ok := p.offl.Pop()
		if !ok {
			break
		}
		var dir nn.Direction
		var conf float32
		var err error
		if p.predict != nil {
			dir, conf, err = p.predict(in.Tensor)
		} else {
			dir, conf, err = p.activeModel().Predict(in.Tensor)
		}
		p.offl.Recycle(in.Tensor) // feature map consumed; reuse its storage
		if err != nil {
			return dst, fmt.Errorf("core: inference: %w", err)
		}
		p.inferences++
		if req, ok := p.trader.OnPrediction(dir, conf, snap); ok {
			dst = append(dst, req)
		}
		if p.sig != nil {
			p.sig(SignalEvent{
				Action:     dir,
				Confidence: conf,
				BidPrice:   p.bids[0].Price,
				BidQty:     p.bids[0].Qty,
				AskPrice:   p.asks[0].Price,
				AskQty:     p.asks[0].Qty,
				LastTrade:  p.lastTrade,
				TickNanos:  timeNanos,
			})
		}
	}
	return dst, nil
}

// OnExecReport feeds an execution report back to the trading engine.
func (p *Pipeline) OnExecReport(rep exchange.ExecReport) { p.trader.OnExec(rep) }

package core

import (
	"fmt"

	"lighttrader/internal/c2c"
	"lighttrader/internal/cgra"
	"lighttrader/internal/compile"
	"lighttrader/internal/nn"
	"lighttrader/internal/sched"
)

// PowerCondition is a card-level power envelope from §IV-C: the accelerator
// share of the card budget after the FPGA and peripherals take theirs.
type PowerCondition struct {
	Name string
	// AccelBudgetWatts is the power available to all AI accelerators.
	AccelBudgetWatts float64
}

// The paper's two evaluation envelopes: a 75 W co-location PCIe card and a
// 40 W constrained card, each minus ≈20 W for FPGA and peripherals.
var (
	Sufficient = PowerCondition{Name: "sufficient", AccelBudgetWatts: 55}
	Limited    = PowerCondition{Name: "limited", AccelBudgetWatts: 20}
)

// Options selects the scheduling features for a configuration.
type Options struct {
	WorkloadScheduling bool
	DVFSScheduling     bool
	// BatchOptions overrides the default batch ladder when non-nil.
	BatchOptions []int
	// Policy overrides Algorithm 1's objective (default: the paper's PPW).
	Policy sched.Policy
	// Precision selects the execution data type (default BF16).
	Precision cgra.Precision
	// Scheduler overrides the scheduling strategy (default: the paper's
	// proactive PPW scheduler behind sched.NewPPWScheduler).
	Scheduler sched.Factory
}

// Configure compiles model m for the default accelerator spec and builds a
// LightTrader SystemConfig with n accelerators under the given power
// condition.
func Configure(m *nn.Model, n int, power PowerCondition, opts Options) (SystemConfig, error) {
	spec := cgra.DefaultSpec()
	kernel, err := compile.CompileFor(m, spec, opts.Precision)
	if err != nil {
		return SystemConfig{}, fmt.Errorf("core: %w", err)
	}
	staticDVFS, _ := sched.StaticDVFSFor(spec, kernel, n, power.AccelBudgetWatts)
	return SystemConfig{
		Sched: sched.Config{
			Spec:               spec,
			Kernel:             kernel,
			Link:               c2c.CustomC2C(),
			BatchOptions:       opts.BatchOptions,
			WorkloadScheduling: opts.WorkloadScheduling,
			DVFSScheduling:     opts.DVFSScheduling,
			StaticDVFS:         staticDVFS,
			PowerBudgetWatts:   power.AccelBudgetWatts,
			PostProcessNanos:   DefaultPostPipelineNanos,
			IssuePolicy:        opts.Policy,
		},
		Scheduler:        opts.Scheduler,
		NumAccels:        n,
		PrePipelineNanos: DefaultPrePipelineNanos,
	}, nil
}

// TickToTradeNanos returns the batch-1 tick-to-trade latency of the
// configured system at its static operating point: trading pipeline in,
// C2C transfer, inference, result return, order generation out (the
// quantity of Fig. 11a plus the ≈1 µs conventional pipeline).
func (cfg SystemConfig) TickToTradeNanos() int64 {
	return cfg.PrePipelineNanos + cfg.Sched.TotalNanos(cfg.Sched.StaticDVFS, 1)
}

package core

import (
	"testing"

	"lighttrader/internal/exchange"
	"lighttrader/internal/feed"
	"lighttrader/internal/lob"
	"lighttrader/internal/nn"
	"lighttrader/internal/offload"
	"lighttrader/internal/trading"
)

func snapsOf(ticks []feed.Tick) []lob.Snapshot {
	out := make([]lob.Snapshot, len(ticks))
	for i := range ticks {
		out[i] = ticks[i].Snapshot
	}
	return out
}

// TestPipelineEndToEnd drives the functional pipeline with generated
// packets against a live matching engine: packets parse, the local book
// mirror tracks the exchange book, inference runs, and orders execute.
func TestPipelineEndToEnd(t *testing.T) {
	cfg := feed.DefaultGeneratorConfig()
	gen, err := feed.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm := gen.Generate(nn.Window)
	norm := offload.Calibrate(snapsOf(warm))

	model := nn.NewVanillaCNN()
	tcfg := trading.DefaultConfig(cfg.SecurityID)
	tcfg.MinConfidence = 0 // act on every directional signal in this test
	p, err := NewPipeline(cfg.Symbol, cfg.SecurityID, model, norm, tcfg)
	if err != nil {
		t.Fatal(err)
	}

	// Orders go to a fresh exchange seeded with backstop liquidity.
	var clock int64
	eng := exchange.New(func() int64 { clock++; return clock }, nil)
	eng.ListSecurity(cfg.SecurityID, cfg.Symbol)
	eng.Submit(exchange.Request{Kind: exchange.ReqNew, SecurityID: cfg.SecurityID, ClOrdID: 1,
		Side: lob.Bid, Price: cfg.MidPrice - 1, Qty: 1000})
	eng.Submit(exchange.Request{Kind: exchange.ReqNew, SecurityID: cfg.SecurityID, ClOrdID: 2,
		Side: lob.Ask, Price: cfg.MidPrice + 1, Qty: 1000})

	ticks := append(warm, gen.Generate(50)...)
	var orders int
	for _, tk := range ticks {
		reqs, err := p.OnPacket(tk.Packet)
		if err != nil {
			t.Fatalf("OnPacket: %v", err)
		}
		for _, req := range reqs {
			orders++
			for _, rep := range eng.Submit(req) {
				p.OnExecReport(rep)
			}
		}
	}
	if p.Ticks() == 0 {
		t.Fatal("no ticks processed")
	}
	if p.Inferences() == 0 {
		t.Fatal("no inferences ran")
	}
	// The local mirror must agree with the generator's book top.
	last := ticks[len(ticks)-1].Snapshot
	got := p.Snapshot(0)
	if got.Bids[0].Price != last.Bids[0].Price || got.Asks[0].Price != last.Asks[0].Price {
		t.Fatalf("local book top (%d/%d) != exchange (%d/%d)",
			got.Bids[0].Price, got.Asks[0].Price, last.Bids[0].Price, last.Asks[0].Price)
	}
	if got.Bids[0].Qty != last.Bids[0].Qty || got.Asks[0].Qty != last.Asks[0].Qty {
		t.Fatalf("local book qty mismatch: %+v vs %+v", got.Bids[0], last.Bids[0])
	}
	if p.Trader().Position() < -10 || p.Trader().Position() > 10 {
		t.Fatalf("risk limit breached: position %d", p.Trader().Position())
	}
	t.Logf("pipeline: %d ticks, %d inferences, %d orders, position %d",
		p.Ticks(), p.Inferences(), orders, p.Trader().Position())
}

func TestPipelineBadPacket(t *testing.T) {
	p, err := NewPipeline("ES", 1, nn.NewVanillaCNN(), offload.Normalizer{}, trading.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.OnPacket([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage packet accepted")
	}
}

// TestPipelineSnapshotRecovery applies a full refresh and checks the local
// book is replaced.
func TestPipelineSnapshotRecovery(t *testing.T) {
	cfg := feed.DefaultGeneratorConfig()
	gen, err := feed.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ticks := gen.Generate(10)
	norm := offload.Calibrate(snapsOf(ticks))
	p, err := NewPipeline(cfg.Symbol, cfg.SecurityID, nn.NewVanillaCNN(), norm, trading.DefaultConfig(cfg.SecurityID))
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range ticks {
		if _, err := p.OnPacket(tk.Packet); err != nil {
			t.Fatal(err)
		}
	}
	if p.Snapshot(0).Bids[0].Price == 0 {
		t.Fatal("book empty after incremental replay")
	}
}

func TestFunctionalBacktest(t *testing.T) {
	cfg := feed.DefaultGeneratorConfig()
	gen, err := feed.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ticks := gen.Generate(nn.Window + 80)
	norm := offload.Calibrate(snapsOf(ticks))
	tcfg := trading.DefaultConfig(cfg.SecurityID)
	tcfg.MinConfidence = 0
	p, err := NewPipeline(cfg.Symbol, cfg.SecurityID, nn.NewVanillaCNN(), norm, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := FunctionalBacktest(ticks, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ticks != len(ticks) || rep.Inferences == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.FinalMid <= 0 {
		t.Fatalf("final mid %v", rep.FinalMid)
	}
	// PnL identity: cash + position·mid must equal the report's PnL.
	if got := p.Trader().MarkToMarket(rep.FinalMid); got != rep.PnLTicks {
		t.Fatalf("PnL mismatch: %v vs %v", got, rep.PnLTicks)
	}
	// A flat book that never moved and zero trades would give zero PnL;
	// with orders, PnL must be finite and bounded by position limits.
	if rep.PnLTicks > 1e9 || rep.PnLTicks < -1e9 {
		t.Fatalf("PnL %v implausible", rep.PnLTicks)
	}
}

// TestFeedHandlerArbitration replays a duplicated, locally reordered feed
// through the arbitrated pipeline and checks the book matches a clean
// replay exactly.
func TestFeedHandlerArbitration(t *testing.T) {
	cfg := feed.DefaultGeneratorConfig()
	gen, err := feed.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ticks := gen.Generate(200)
	norm := offload.Calibrate(snapsOf(ticks))

	build := func() *Pipeline {
		p, err := NewPipeline(cfg.Symbol, cfg.SecurityID, nn.NewSizedCNN("tiny", 8, 0), norm, trading.DefaultConfig(cfg.SecurityID))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	clean := build()
	for _, tk := range ticks {
		if _, err := clean.OnPacket(tk.Packet); err != nil {
			t.Fatal(err)
		}
	}

	arbitrated := build()
	h := NewFeedHandler(arbitrated, 8)
	// Feed A then B for every packet, with adjacent pairs swapped on B.
	for i := 0; i < len(ticks); i++ {
		if _, err := h.OnDatagram(ticks[i].Packet); err != nil {
			t.Fatal(err)
		}
		j := i ^ 1 // swap adjacent pairs
		if j < len(ticks) {
			if _, err := h.OnDatagram(ticks[j].Packet); err != nil {
				t.Fatal(err)
			}
		}
	}
	a, b := clean.Snapshot(0), arbitrated.Snapshot(0)
	if a.Bids != b.Bids || a.Asks != b.Asks {
		t.Fatalf("arbitrated book diverged:\nclean %+v\narb   %+v", a, b)
	}
	if h.Stats().Duplicates == 0 {
		t.Fatal("no duplicates suppressed")
	}
	if h.Recovering() {
		t.Fatal("handler stuck in recovery")
	}
}

// TestMultiPipelineTwoInstruments drives two instruments over one shared
// channel and checks each pipeline tracks only its own book.
func TestMultiPipelineTwoInstruments(t *testing.T) {
	var clock int64
	var packets [][]byte
	eng := exchange.New(func() int64 { clock++; return clock }, func(buf []byte) {
		cp := make([]byte, len(buf))
		copy(cp, buf)
		packets = append(packets, cp)
	})
	eng.ListSecurity(1, "ESU6")
	eng.ListSecurity(2, "NQU6")

	mp := NewMultiPipeline()
	for _, sub := range []struct {
		id  int32
		sym string
	}{{1, "ESU6"}, {2, "NQU6"}} {
		if err := mp.Add(sub.sym, sub.id, nn.NewSizedCNN("tiny-"+sub.sym, 8, 0),
			offload.Normalizer{}, trading.DefaultConfig(sub.id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := mp.Add("dup", 1, nn.NewSizedCNN("d", 8, 0), offload.Normalizer{}, trading.DefaultConfig(1)); err == nil {
		t.Fatal("duplicate security ID accepted")
	}
	// A fresh security ID must not smuggle in an already-subscribed symbol.
	if err := mp.Add("ESU6", 3, nn.NewSizedCNN("d2", 8, 0), offload.Normalizer{}, trading.DefaultConfig(3)); err == nil {
		t.Fatal("duplicate symbol accepted")
	}
	if got := mp.Symbols(); len(got) != 2 || got[0] != "ESU6" || got[1] != "NQU6" {
		t.Fatalf("Symbols() = %v", got)
	}
	if got := mp.SecurityIDs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("SecurityIDs() = %v", got)
	}
	if mp.Len() != 2 || len(mp.Pipelines()) != 2 {
		t.Fatalf("Len() = %d, Pipelines() = %d", mp.Len(), len(mp.Pipelines()))
	}

	// Interleaved order flow on both instruments.
	id := uint64(100)
	for i := 0; i < 30; i++ {
		id++
		eng.Submit(exchange.Request{Kind: exchange.ReqNew, SecurityID: 1, ClOrdID: id,
			Side: lob.Side(i % 2), Price: int64(100000 + i%5 - 2 + 10*(i%2)), Qty: 3})
		id++
		eng.Submit(exchange.Request{Kind: exchange.ReqNew, SecurityID: 2, ClOrdID: id,
			Side: lob.Side(i % 2), Price: int64(200000 + i%5 - 2 + 10*(i%2)), Qty: 7})
	}
	for _, pkt := range packets {
		if _, err := mp.OnPacket(pkt); err != nil {
			t.Fatal(err)
		}
	}

	p1, _ := mp.Pipeline(1)
	p2, _ := mp.Pipeline(2)
	s1 := p1.Snapshot(0)
	s2 := p2.Snapshot(0)
	// Each book must hold only its instrument's price range.
	if s1.Bids[0].Price < 99000 || s1.Bids[0].Price > 101000 {
		t.Fatalf("ES book contaminated: %+v", s1.Bids[0])
	}
	if s2.Bids[0].Price < 199000 || s2.Bids[0].Price > 201000 {
		t.Fatalf("NQ book contaminated: %+v", s2.Bids[0])
	}
	// Tick counts track only own-instrument updates.
	if p1.Ticks() == 0 || p2.Ticks() == 0 {
		t.Fatalf("ticks: ES %d NQ %d", p1.Ticks(), p2.Ticks())
	}
	// Books must match the engine exactly.
	b1, _ := eng.Book(1)
	b2, _ := eng.Book(2)
	e1 := b1.TakeSnapshot(0)
	e2 := b2.TakeSnapshot(0)
	for l := 0; l < lob.DepthLevels; l++ {
		if s1.Bids[l].Price != e1.Bids[l].Price || s1.Bids[l].Qty != e1.Bids[l].Qty {
			t.Fatalf("ES bid level %d: %+v vs %+v", l, s1.Bids[l], e1.Bids[l])
		}
		if s2.Asks[l].Price != e2.Asks[l].Price || s2.Asks[l].Qty != e2.Asks[l].Qty {
			t.Fatalf("NQ ask level %d: %+v vs %+v", l, s2.Asks[l], e2.Asks[l])
		}
	}
	// Exec routing: a fill on instrument 2 must not touch instrument 1.
	mp.OnExecReport(exchange.ExecReport{Exec: exchange.ExecFilled, SecurityID: 2,
		ClOrdID: 999, Side: lob.Bid, Price: 200000, Qty: 1})
	if p1.Trader().Position() != 0 || p2.Trader().Position() != 1 {
		t.Fatalf("positions: ES %d NQ %d", p1.Trader().Position(), p2.Trader().Position())
	}
}

// Package core integrates the LightTrader system (paper §III): the FPGA
// trading pipeline, the offload engine queue, one or more CGRA AI
// accelerators behind the C2C interconnect, and the proactive scheduler.
// It provides two faces: System, the profiled-latency model driven by the
// back-test simulator (internal/sim), and Pipeline (pipeline.go), the
// functional packet→parse→book→infer→order path used by the live-wire
// examples.
package core

import (
	"fmt"

	"lighttrader/internal/cgra"
	"lighttrader/internal/sched"
	"lighttrader/internal/sim"
)

// SystemConfig configures a simulated LightTrader instance.
type SystemConfig struct {
	// Sched carries the hardware models and scheduling feature switches.
	Sched sched.Config
	// Scheduler selects the scheduling strategy deciding what each idle
	// accelerator issues. nil selects the paper's proactive PPW scheduler
	// (Algorithm 1), which reproduces the pre-interface behaviour exactly.
	Scheduler sched.Factory
	// NumAccels is the accelerator count (1…16 in the paper's sweeps).
	NumAccels int
	// PrePipelineNanos is the FPGA trading-pipeline time before a tensor
	// reaches the offload engine: packet parse, book update, feature
	// packing (≈350 ns on the KU15P-class pipeline).
	PrePipelineNanos int64
	// MaxQueue bounds the offload-engine FIFO; arrivals beyond it evict
	// the oldest tensor (stale-tensor management, §III-A). Zero means 64.
	MaxQueue int
}

// DefaultPrePipelineNanos is the calibrated FPGA front-pipeline latency.
const DefaultPrePipelineNanos = 350

// DefaultPostPipelineNanos is the calibrated post-inference latency:
// trading-engine decision plus order encoding and egress.
const DefaultPostPipelineNanos = 310

// accel is the runtime state of one AI accelerator.
type accel struct {
	state  cgra.DVFSState
	busy   bool
	doneAt int64
	batch  []sim.Query
	// retimes counts DVFS changes applied to the in-flight batch; the
	// scheduler caps it to avoid switch-stall thrash (§III-D: "frequent
	// changing in DVFS policy within a short time interval increases the
	// risk of a power failure as well as the overall latency").
	retimes int
}

// System is the simulated LightTrader appliance implementing
// sim.SystemModel.
type System struct {
	cfg    SystemConfig
	name   string
	queue  []sim.Query
	accels []accel

	// policy is the scheduling strategy, rebuilt from cfg.Scheduler on
	// every Reset so stateful policies start each run fresh.
	policy sched.Scheduler
	// viewScratch backs the busy-accelerator views handed to the policy
	// and to Algorithm 2; reused across calls, never retained.
	viewScratch []sched.BusyAccel

	pending []sim.Completion
	lastNow int64

	energyJ      float64
	lastEnergyAt int64
	energyStart  bool
	maxPowerW    float64

	// probe observes scheduler-internal events; nil outside instrumented
	// runs. Probes never influence decisions (determinism invariant).
	probe sim.Probe
}

var _ sim.SystemModel = (*System)(nil)
var _ sim.EnergyReporter = (*System)(nil)
var _ sim.Instrumentable = (*System)(nil)

// NewSystem builds a LightTrader system model.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.NumAccels < 1 {
		return nil, fmt.Errorf("core: need at least one accelerator, got %d", cfg.NumAccels)
	}
	if cfg.Sched.Kernel == nil {
		return nil, fmt.Errorf("core: scheduler config carries no kernel")
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 64
	}
	if cfg.PrePipelineNanos == 0 {
		cfg.PrePipelineNanos = DefaultPrePipelineNanos
	}
	if cfg.Sched.PostProcessNanos == 0 {
		cfg.Sched.PostProcessNanos = DefaultPostPipelineNanos
	}
	if err := cfg.Sched.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	tag := "baseline"
	switch {
	case cfg.Sched.WorkloadScheduling && cfg.Sched.DVFSScheduling:
		tag = "WS+DS"
	case cfg.Sched.WorkloadScheduling:
		tag = "WS"
	case cfg.Sched.DVFSScheduling:
		tag = "DS"
	}
	s := &System{cfg: cfg}
	s.Reset()
	if name := s.policy.Name(); name != "ppw" {
		// Non-default policies show up in the system tag (and therefore in
		// every metrics line); the default keeps the historical name.
		tag += "," + name
	}
	s.name = fmt.Sprintf("LightTrader[%s,N=%d,%s]",
		cfg.Sched.Kernel.ModelName, cfg.NumAccels, tag)
	return s, nil
}

// Name implements sim.SystemModel.
func (s *System) Name() string { return s.name }

// Reset implements sim.SystemModel.
func (s *System) Reset() {
	factory := s.cfg.Scheduler
	if factory == nil {
		factory = func(c *sched.Config) sched.Scheduler { return sched.NewPPWScheduler(c) }
	}
	s.policy = factory(&s.cfg.Sched)
	s.queue = s.queue[:0]
	s.accels = make([]accel, s.cfg.NumAccels)
	start := s.startState()
	for i := range s.accels {
		s.accels[i].state = start
	}
	s.pending = nil
	s.lastNow = 0
	s.energyJ = 0
	s.lastEnergyAt = 0
	s.energyStart = false
	s.maxPowerW = 0
}

// MaxObservedPowerWatts returns the highest instantaneous accelerator draw
// seen since Reset — the quantity the card's power budget constrains.
func (s *System) MaxObservedPowerWatts() float64 { return s.maxPowerW }

// startState is the operating point accelerators boot into: the static
// Table III point without DVFS scheduling, the lowest state with it (DS
// parks idle accelerators at the power floor).
func (s *System) startState() cgra.DVFSState {
	if s.cfg.Sched.DVFSScheduling {
		return s.cfg.Sched.Spec.DVFSTable()[0]
	}
	return s.cfg.Sched.StaticDVFS
}

// EnergyJoules implements sim.EnergyReporter.
func (s *System) EnergyJoules() float64 { return s.energyJ }

// SetProbe implements sim.Instrumentable.
func (s *System) SetProbe(p sim.Probe) { s.probe = p }

// emitQuery/emitDVFS/sample forward events to the attached probe.
func (s *System) emitQuery(e sim.QueryEvent) {
	if s.probe != nil {
		s.probe.OnQueryEvent(e)
	}
}

func (s *System) emitDVFS(e sim.DVFSEvent) {
	if s.probe != nil {
		s.probe.OnDVFSEvent(e)
	}
}

// sample reports post-scheduling load and draw to the probe.
func (s *System) sample(now int64) {
	if s.probe == nil {
		return
	}
	busy := 0
	for i := range s.accels {
		if s.accels[i].busy {
			busy++
		}
	}
	s.probe.OnSample(sim.Sample{
		TimeNanos:  now,
		QueueDepth: len(s.queue),
		BusyAccels: busy,
		PowerWatts: s.totalDrawWatts(),
	})
}

// accrueEnergy integrates accelerator power up to now.
func (s *System) accrueEnergy(now int64) {
	if !s.energyStart {
		s.lastEnergyAt = now
		s.energyStart = true
		return
	}
	dt := float64(now-s.lastEnergyAt) / 1e9
	watts := s.totalDrawWatts()
	if watts > s.maxPowerW {
		s.maxPowerW = watts
	}
	if dt <= 0 {
		return
	}
	s.energyJ += watts * dt
	s.lastEnergyAt = now
}

// OnArrival implements sim.SystemModel.
func (s *System) OnArrival(now int64, q sim.Query) {
	s.accrueEnergy(now)
	s.lastNow = now
	if len(s.queue) >= s.cfg.MaxQueue {
		// Stale-tensor management: evict the oldest feature map.
		s.emitQuery(sim.QueryEvent{
			TimeNanos: now, Kind: sim.QueryEvict, Query: s.queue[0], Accel: -1,
		})
		s.pending = append(s.pending, sim.Completion{Query: s.queue[0], Dropped: true})
		s.queue = s.queue[1:]
	}
	s.queue = append(s.queue, q)
	s.schedule(now)
}

// NextEventTime implements sim.SystemModel.
func (s *System) NextEventTime() int64 {
	if len(s.pending) > 0 {
		return s.lastNow
	}
	next := int64(sim.NoEvent)
	for i := range s.accels {
		if s.accels[i].busy && s.accels[i].doneAt < next {
			next = s.accels[i].doneAt
		}
	}
	return next
}

// Advance implements sim.SystemModel.
func (s *System) Advance(now int64) []sim.Completion {
	s.accrueEnergy(now)
	s.lastNow = now
	out := s.pending
	s.pending = nil
	for i := range s.accels {
		a := &s.accels[i]
		if a.busy && a.doneAt <= now {
			for _, q := range a.batch {
				out = append(out, sim.Completion{Query: q, DoneNanos: a.doneAt, Batch: len(a.batch)})
			}
			a.busy = false
			a.batch = nil
			if s.cfg.Sched.DVFSScheduling {
				// Park the idle accelerator at the power floor.
				floor := s.cfg.Sched.Spec.DVFSTable()[0]
				if a.state != floor {
					s.emitDVFS(sim.DVFSEvent{
						TimeNanos: now, Accel: i, Reason: sim.DVFSPark,
						FromGHz: a.state.FreqGHz, ToGHz: floor.FreqGHz,
					})
				}
				a.state = floor
			}
		}
	}
	s.schedule(now)
	return out
}

// drawOf returns accelerator i's present power draw. It is the single
// source of the busy/idle draw rule so probe sampling, energy accrual and
// budget accounting cannot drift apart.
func (s *System) drawOf(i int) float64 {
	a := &s.accels[i]
	if a.busy {
		return s.cfg.Sched.BusyPower(a.state)
	}
	return s.cfg.Sched.Spec.IdlePower(a.state)
}

// totalDrawWatts is the instantaneous draw across all accelerators.
func (s *System) totalDrawWatts() float64 {
	var watts float64
	for i := range s.accels {
		watts += s.drawOf(i)
	}
	return watts
}

// powerAvailExcluding returns the unallocated budget if accelerator skip's
// draw is excluded (it is about to change state).
func (s *System) powerAvailExcluding(skip int) float64 {
	var used float64
	for i := range s.accels {
		if i != skip {
			used += s.drawOf(i)
		}
	}
	return s.cfg.Sched.PowerBudgetWatts - used
}

// idleCount returns the number of accelerators able to take work.
func (s *System) idleCount() int {
	n := 0
	for i := range s.accels {
		if !s.accels[i].busy {
			n++
		}
	}
	return n
}

// busyViews builds the per-accelerator busy view handed to the scheduling
// policy and to Algorithm 2. The returned slice aliases viewScratch and is
// only valid until the next call.
func (s *System) busyViews(now int64) []sched.BusyAccel {
	views := s.viewScratch[:0]
	for i := range s.accels {
		a := &s.accels[i]
		if !a.busy {
			continue
		}
		minDeadline := a.batch[0].DeadlineNanos
		for _, q := range a.batch[1:] {
			if q.DeadlineNanos < minDeadline {
				minDeadline = q.DeadlineNanos
			}
		}
		views = append(views, sched.BusyViewAt(i, a.state, len(a.batch), minDeadline, a.doneAt, now))
	}
	s.viewScratch = views
	return views
}

// applyDVFS retimes a busy accelerator to a new state at now: the remaining
// work stalls for the switch delay and then proceeds scaled by the
// frequency ratio. (The small fixed-time C2C/post share of the remaining
// work is scaled along with it; it is ≪1% of t_total.)
func (s *System) applyDVFS(i int, d cgra.DVFSState, now int64, reason sim.DVFSReason) {
	a := &s.accels[i]
	if a.state == d {
		return
	}
	var retimed int64
	if a.busy {
		remaining := a.doneAt - now
		if remaining < 0 {
			remaining = 0
		}
		newDone := now + s.cfg.Sched.RetimedRemainingNanos(remaining, a.state, d)
		retimed = newDone - a.doneAt
		a.doneAt = newDone
		a.retimes++
	}
	s.emitDVFS(sim.DVFSEvent{
		TimeNanos: now, Accel: i, Reason: reason,
		FromGHz: a.state.FreqGHz, ToGHz: d.FreqGHz, RetimedNanos: retimed,
	})
	a.state = d
}

// schedule runs the configured scheduling policy: the strategy decides
// what each idle accelerator issues (Algorithm 1 under the default
// PPWScheduler, with Algorithm 2's power-saving step as a retry path when
// an issue fails on power), then Algorithm 2 redistributes residual budget.
// DVFS actions are rate-limited ("the HFT system carefully uses DVFS",
// §III-D): each in-flight batch is retimed at most once, and only when
// enough work remains to amortise the switch stall.
func (s *System) schedule(now int64) {
	cfg := &s.cfg.Sched
	for i := range s.accels {
		a := &s.accels[i]
		if a.busy {
			continue
		}
		savedPower := false
		for len(s.queue) > 0 {
			oldest := s.queue[0]
			avail := oldest.Remaining(now) - s.cfg.PrePipelineNanos
			dec := s.policy.Decide(sched.SchedContext{
				NowNanos:        now,
				Queued:          len(s.queue),
				AvailNanos:      avail,
				PowerAvailWatts: s.powerAvailExcluding(i),
				Current:         a.state,
				AccelID:         i,
				IdleAccels:      s.idleCount(),
				Busy:            s.busyViews(now),
			})
			issue, verdict := dec.Issue, dec.Verdict
			ok := verdict == sched.VerdictIssued
			if !ok && cfg.DVFSScheduling && !savedPower {
				// Saving step: scale busy accelerators down within their
				// deadline slack to make room, then retry once. A power
				// emergency may retime a batch a second time.
				savedPower = true
				if changes := sched.SavePower(cfg, s.busyViews(now)); len(changes) > 0 {
					for _, ch := range changes {
						s.applyDVFS(ch.ID, ch.DVFS, now, sim.DVFSSave)
					}
					continue
				}
			}
			if !ok {
				// Defer the oldest tensor to the conventional pipeline,
				// attributed to the scheduler's decision reason.
				s.emitQuery(sim.QueryEvent{
					TimeNanos: now, Kind: sim.QueryDefer, Query: oldest,
					Accel: -1, Cause: verdict.DeferCause(),
				})
				s.pending = append(s.pending, sim.Completion{Query: oldest, Dropped: true})
				s.queue = s.queue[1:]
				continue
			}
			batch := make([]sim.Query, issue.Batch)
			copy(batch, s.queue[:issue.Batch])
			s.queue = s.queue[issue.Batch:]
			if a.state != issue.DVFS {
				s.emitDVFS(sim.DVFSEvent{
					TimeNanos: now, Accel: i, Reason: sim.DVFSAtIssue,
					FromGHz: a.state.FreqGHz, ToGHz: issue.DVFS.FreqGHz,
				})
			}
			a.busy = true
			a.batch = batch
			a.state = issue.DVFS
			a.retimes = 0
			a.doneAt = now + s.cfg.PrePipelineNanos + issue.TotalNanos
			if s.probe != nil {
				for _, q := range batch {
					s.emitQuery(sim.QueryEvent{
						TimeNanos: now, Kind: sim.QueryIssue, Query: q,
						Accel: i, Batch: issue.Batch, DoneNanos: a.doneAt,
					})
				}
			}
			break
		}
	}
	if cfg.DVFSScheduling {
		// Redistribute the residual budget across busy accelerators,
		// reserving enough headroom for the idle accelerators to pick up
		// queued work at the floor state.
		views := s.retimableViews(now)
		if len(views) > 0 {
			used := s.totalDrawWatts()
			idle := 0
			for i := range s.accels {
				if !s.accels[i].busy {
					idle++
				}
			}
			pending := len(s.queue)
			if idle > pending {
				idle = pending
			}
			floor := cfg.Spec.DVFSTable()[0]
			reserve := float64(idle) * (cfg.BusyPower(floor) - cfg.Spec.IdlePower(floor))
			avail := s.cfg.Sched.PowerBudgetWatts - used - reserve
			for _, ch := range sched.Redistribute(cfg, views, avail) {
				s.applyDVFS(ch.ID, ch.DVFS, now, sim.DVFSRedistribute)
			}
		}
	}
	s.sample(now)
}

// retimableViews returns the busy accelerators still eligible for a DVFS
// change: not yet retimed this batch and with enough remaining work to
// amortise the switch stall.
func (s *System) retimableViews(now int64) []sched.BusyAccel {
	views := s.busyViews(now)
	amortise := 4 * s.cfg.Sched.Spec.DVFSSwitchNanos
	filtered := views[:0]
	for _, v := range views {
		if s.accels[v.ID].retimes == 0 && v.RemainingNanos > amortise {
			filtered = append(filtered, v)
		}
	}
	return filtered
}

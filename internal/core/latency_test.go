package core

import (
	"testing"

	"lighttrader/internal/feed"
	"lighttrader/internal/latency"
	"lighttrader/internal/nn"
	"lighttrader/internal/offload"
	"lighttrader/internal/trading"
)

// TestPipelineLatencyHook checks SetLatency records one sample per decoded
// packet and that detaching stops recording.
func TestPipelineLatencyHook(t *testing.T) {
	cfg := feed.DefaultGeneratorConfig()
	gen, err := feed.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ticks := gen.Generate(20)
	p, err := NewPipeline(cfg.Symbol, cfg.SecurityID, nn.NewSizedCNN("tiny", 8, 0),
		offload.Calibrate(snapsOf(ticks)), trading.DefaultConfig(cfg.SecurityID))
	if err != nil {
		t.Fatal(err)
	}
	var hist latency.Histogram
	p.SetLatency(&hist)
	for _, tk := range ticks {
		if _, err := p.OnPacket(tk.Packet); err != nil {
			t.Fatal(err)
		}
	}
	if hist.Count() != uint64(len(ticks)) {
		t.Fatalf("recorded %d samples, want %d", hist.Count(), len(ticks))
	}
	if s := hist.Summarize(); s.P99 < s.P50 || s.Max < s.P999 {
		t.Fatalf("inconsistent summary: %+v", s)
	}
	p.SetLatency(nil)
	if _, err := p.OnPacket(gen.Generate(1)[0].Packet); err != nil {
		t.Fatal(err)
	}
	if hist.Count() != uint64(len(ticks)) {
		t.Fatal("detached histogram still recording")
	}
}

// TestFeedHandlerLatencyHook checks the wire-to-order histogram counts every
// datagram, including ones the arbiter parks or dedupes.
func TestFeedHandlerLatencyHook(t *testing.T) {
	cfg := feed.DefaultGeneratorConfig()
	gen, err := feed.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ticks := gen.Generate(20)
	p, err := NewPipeline(cfg.Symbol, cfg.SecurityID, nn.NewSizedCNN("tiny", 8, 0),
		offload.Calibrate(snapsOf(ticks)), trading.DefaultConfig(cfg.SecurityID))
	if err != nil {
		t.Fatal(err)
	}
	fh := NewFeedHandler(p, 0)
	var hist latency.Histogram
	fh.SetLatency(&hist)
	datagrams := 0
	for _, tk := range ticks {
		for i := 0; i < 2; i++ { // redundant A/B delivery: every datagram times
			if _, err := fh.OnDatagram(tk.Packet); err != nil {
				t.Fatal(err)
			}
			datagrams++
		}
	}
	if hist.Count() != uint64(datagrams) {
		t.Fatalf("recorded %d samples, want %d", hist.Count(), datagrams)
	}
}

package core

import (
	"fmt"

	"lighttrader/internal/exchange"
	"lighttrader/internal/feed"
)

// FunctionalReport summarises a functional (packet-level) back-test.
type FunctionalReport struct {
	Ticks      int
	Inferences int
	Orders     int
	// FinalPosition is the net position at the end of the trace.
	FinalPosition int64
	// PnLTicks is net profit in tick·lot units, with the open position
	// marked to the final mid price.
	PnLTicks float64
	// FinalMid is the mark price used.
	FinalMid float64
}

// FunctionalBacktest replays a recorded trace packet-by-packet through the
// functional pipeline with an immediate-fill execution model: generated
// orders are aggressive limits at the touch, so they are assumed filled at
// their limit price (the standard optimistic taker fill model; queueing
// and impact are the domain of the latency simulator, not this PnL view).
func FunctionalBacktest(ticks []feed.Tick, p *Pipeline) (FunctionalReport, error) {
	var rep FunctionalReport
	for i := range ticks {
		reqs, err := p.OnPacket(ticks[i].Packet)
		if err != nil {
			return rep, fmt.Errorf("core: backtest tick %d: %w", i, err)
		}
		for _, req := range reqs {
			rep.Orders++
			p.OnExecReport(exchange.ExecReport{
				Exec:       exchange.ExecFilled,
				ClOrdID:    req.ClOrdID,
				SecurityID: req.SecurityID,
				Side:       req.Side,
				Price:      req.Price,
				Qty:        req.Qty,
			})
		}
	}
	rep.Ticks = p.Ticks()
	rep.Inferences = p.Inferences()
	rep.FinalPosition = p.Trader().Position()
	if len(ticks) > 0 {
		rep.FinalMid = ticks[len(ticks)-1].Snapshot.MidPrice()
	}
	rep.PnLTicks = p.Trader().MarkToMarket(rep.FinalMid)
	return rep, nil
}

package core

import (
	"fmt"

	"lighttrader/internal/exchange"
	"lighttrader/internal/nn"
	"lighttrader/internal/offload"
	"lighttrader/internal/sbe"
	"lighttrader/internal/trading"
)

// MultiPipeline runs one functional pipeline per subscribed instrument over
// a shared market-data channel, the multi-symbol deployment of §II-C
// ("even if only a single symbol is subscribed" implies the general case).
// Each datagram is parsed once and dispatched; every pipeline filters to
// its own security and maintains an independent book, model and risk state.
type MultiPipeline struct {
	pipes map[int32]*Pipeline
	order []int32 // deterministic dispatch order
}

// NewMultiPipeline returns an empty multi-instrument pipeline.
func NewMultiPipeline() *MultiPipeline {
	return &MultiPipeline{pipes: make(map[int32]*Pipeline)}
}

// Add subscribes an instrument with its own model, normaliser and limits.
func (mp *MultiPipeline) Add(symbol string, securityID int32, model *nn.Model, norm offload.Normalizer, tcfg trading.Config) error {
	if _, dup := mp.pipes[securityID]; dup {
		return fmt.Errorf("core: security %d already subscribed", securityID)
	}
	p, err := NewPipeline(symbol, securityID, model, norm, tcfg)
	if err != nil {
		return err
	}
	mp.pipes[securityID] = p
	mp.order = append(mp.order, securityID)
	return nil
}

// Pipeline returns the per-instrument pipeline.
func (mp *MultiPipeline) Pipeline(securityID int32) (*Pipeline, bool) {
	p, ok := mp.pipes[securityID]
	return p, ok
}

// OnPacket parses one datagram and dispatches it to every subscription,
// concatenating the generated order requests.
func (mp *MultiPipeline) OnPacket(buf []byte) ([]exchange.Request, error) {
	pkt, err := sbe.DecodePacket(buf)
	if err != nil {
		return nil, fmt.Errorf("core: packet parse: %w", err)
	}
	var orders []exchange.Request
	for _, id := range mp.order {
		reqs, err := mp.pipes[id].OnDecodedPacket(pkt)
		if err != nil {
			return orders, err
		}
		orders = append(orders, reqs...)
	}
	return orders, nil
}

// OnExecReport routes an execution report to the owning instrument.
func (mp *MultiPipeline) OnExecReport(rep exchange.ExecReport) {
	if p, ok := mp.pipes[rep.SecurityID]; ok {
		p.OnExecReport(rep)
	}
}

package core

import (
	"fmt"

	"lighttrader/internal/exchange"
	"lighttrader/internal/nn"
	"lighttrader/internal/offload"
	"lighttrader/internal/sbe"
	"lighttrader/internal/trading"
)

// MultiPipeline runs one functional pipeline per subscribed instrument over
// a shared market-data channel, the multi-symbol deployment of §II-C
// ("even if only a single symbol is subscribed" implies the general case).
// Each datagram is parsed once and dispatched; every pipeline filters to
// its own security and maintains an independent book, model and risk state.
//
// MultiPipeline itself is the strictly serial dispatch path; the concurrent
// serving runtime (internal/serve) shards the same subscription set across
// worker lanes and reduces to this behaviour in its single-lane
// configuration.
type MultiPipeline struct {
	pipes   map[int32]*Pipeline
	symbols map[string]int32 // symbol → securityID, for duplicate detection
	order   []int32          // deterministic dispatch order
}

// NewMultiPipeline returns an empty multi-instrument pipeline.
func NewMultiPipeline() *MultiPipeline {
	return &MultiPipeline{
		pipes:   make(map[int32]*Pipeline),
		symbols: make(map[string]int32),
	}
}

// Add subscribes an instrument with its own model, normaliser and limits.
// Both the security ID and the symbol string must be new: two subscriptions
// may not share either key.
func (mp *MultiPipeline) Add(symbol string, securityID int32, model *nn.Model, norm offload.Normalizer, tcfg trading.Config) error {
	p, err := NewPipeline(symbol, securityID, model, norm, tcfg)
	if err != nil {
		return err
	}
	return mp.Attach(p)
}

// Attach subscribes an already-assembled pipeline (the single-instrument
// wire path builds its Pipeline first and joins a multi-symbol deployment
// later). The same uniqueness rules as Add apply.
func (mp *MultiPipeline) Attach(p *Pipeline) error {
	if _, dup := mp.pipes[p.SecurityID()]; dup {
		return fmt.Errorf("core: security %d already subscribed", p.SecurityID())
	}
	if id, dup := mp.symbols[p.Symbol()]; dup {
		return fmt.Errorf("core: symbol %q already subscribed as security %d", p.Symbol(), id)
	}
	mp.pipes[p.SecurityID()] = p
	mp.symbols[p.Symbol()] = p.SecurityID()
	mp.order = append(mp.order, p.SecurityID())
	return nil
}

// Pipeline returns the per-instrument pipeline.
func (mp *MultiPipeline) Pipeline(securityID int32) (*Pipeline, bool) {
	p, ok := mp.pipes[securityID]
	return p, ok
}

// Pipelines returns every subscribed pipeline in subscription order.
func (mp *MultiPipeline) Pipelines() []*Pipeline {
	out := make([]*Pipeline, len(mp.order))
	for i, id := range mp.order {
		out[i] = mp.pipes[id]
	}
	return out
}

// Symbols returns the subscribed symbols in subscription order.
func (mp *MultiPipeline) Symbols() []string {
	out := make([]string, len(mp.order))
	for i, id := range mp.order {
		out[i] = mp.pipes[id].Symbol()
	}
	return out
}

// SecurityIDs returns the subscribed security IDs in subscription order.
func (mp *MultiPipeline) SecurityIDs() []int32 {
	out := make([]int32, len(mp.order))
	copy(out, mp.order)
	return out
}

// Len returns the number of subscriptions.
func (mp *MultiPipeline) Len() int { return len(mp.order) }

// OnPacket parses one datagram and dispatches it to every subscription,
// concatenating the generated order requests.
func (mp *MultiPipeline) OnPacket(buf []byte) ([]exchange.Request, error) {
	pkt, err := sbe.DecodePacket(buf)
	if err != nil {
		return nil, fmt.Errorf("core: packet parse: %w", err)
	}
	return mp.OnDecodedPacket(pkt)
}

// OnDecodedPacket dispatches an already-decoded packet to every
// subscription in subscription order (the arbitrated-feed path).
func (mp *MultiPipeline) OnDecodedPacket(pkt sbe.Packet) ([]exchange.Request, error) {
	var orders []exchange.Request
	for _, id := range mp.order {
		reqs, err := mp.pipes[id].OnDecodedPacket(pkt)
		if err != nil {
			return orders, err
		}
		orders = append(orders, reqs...)
	}
	return orders, nil
}

// OnExecReport routes an execution report to the owning instrument.
func (mp *MultiPipeline) OnExecReport(rep exchange.ExecReport) {
	if p, ok := mp.pipes[rep.SecurityID]; ok {
		p.OnExecReport(rep)
	}
}

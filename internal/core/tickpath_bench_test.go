package core

import (
	"encoding/binary"
	"testing"

	"lighttrader/internal/exchange"
	"lighttrader/internal/feed"
	"lighttrader/internal/lob"
	"lighttrader/internal/nn"
	"lighttrader/internal/offload"
	"lighttrader/internal/sbe"
	"lighttrader/internal/tensor"
	"lighttrader/internal/trading"
)

// benchTicks generates one deterministic single-instrument tick trace and a
// normaliser calibrated from it. The trace is produced once per process and
// shared; benchmarks only overwrite the packet sequence-number bytes.
var benchTicks []feed.Tick
var benchNorm offload.Normalizer

func tickTrace(b *testing.B) []feed.Tick {
	b.Helper()
	if benchTicks == nil {
		g, err := feed.NewGenerator(feed.DefaultGeneratorConfig())
		if err != nil {
			b.Fatal(err)
		}
		benchTicks = g.Generate(4096)
		snaps := make([]lob.Snapshot, len(benchTicks))
		for i := range benchTicks {
			snaps[i] = benchTicks[i].Snapshot
		}
		benchNorm = offload.Calibrate(snaps)
	}
	return benchTicks
}

// benchPipeline assembles the conventional pipeline with the accelerator
// answer stubbed to a constant aggressive signal, so the measured path is
// exactly the software tick-to-trade stages: decode → arbitration → book
// update → snapshot → feature extraction → trading decision → order out.
func benchPipeline(b *testing.B, stubPredict bool) (*Pipeline, *FeedHandler) {
	b.Helper()
	tcfg := trading.DefaultConfig(1)
	tcfg.MinConfidence = 0.2
	tcfg.DecisionLogCap = 512
	p, err := NewPipeline("ESU6", 1, nn.NewSizedCNN("tickbench", 4, 0), benchNorm, tcfg)
	if err != nil {
		b.Fatal(err)
	}
	if stubPredict {
		p.SetPredictor(func(*tensor.Tensor) (nn.Direction, float32, error) {
			return nn.Up, 0.9, nil
		})
	}
	return p, NewFeedHandler(p, 0)
}

// runTick replays one trace tick through the feed handler with a fresh
// sequence number, acknowledging every generated order with a cancel so the
// trading engine's exposure returns to zero and the order flow never stops.
func runTick(b *testing.B, p *Pipeline, fh *FeedHandler, ticks []feed.Tick, i int, seq *uint32) {
	buf := ticks[i%len(ticks)].Packet
	*seq++
	binary.LittleEndian.PutUint32(buf[0:], *seq)
	reqs, err := fh.OnDatagram(buf)
	if err != nil {
		b.Fatal(err)
	}
	for _, req := range reqs {
		p.OnExecReport(exchange.ExecReport{
			Exec: exchange.ExecCanceled, ClOrdID: req.ClOrdID,
			SecurityID: req.SecurityID, Side: req.Side,
			Price: req.Price, Qty: req.Qty,
		})
	}
}

// BenchmarkTickToTrade measures the end-to-end software tick path: datagram
// bytes in → arbitrated decode → book update → snapshot → feature map →
// trading decision → order request out. The DNN answer is stubbed (the
// accelerator is modelled off this path; see BenchmarkTickToTradeInfer for
// the software-inference variant).
func BenchmarkTickToTrade(b *testing.B) {
	ticks := tickTrace(b)
	p, fh := benchPipeline(b, true)
	var seq uint32
	// Warm through one full trace cycle: fills the feature window and lets
	// every reusable buffer reach steady-state capacity.
	for i := 0; i < len(ticks); i++ {
		runTick(b, p, fh, ticks, i, &seq)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runTick(b, p, fh, ticks, i, &seq)
	}
}

// BenchmarkTickToTradeInfer is the same path with the real (small sized-CNN)
// software forward pass inline, for scale: it shows how the conventional
// pipeline compares with software inference on the same core.
func BenchmarkTickToTradeInfer(b *testing.B) {
	ticks := tickTrace(b)
	p, fh := benchPipeline(b, false)
	var seq uint32
	for i := 0; i < 256; i++ {
		runTick(b, p, fh, ticks, i, &seq)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runTick(b, p, fh, ticks, i, &seq)
	}
}

// BenchmarkStageBookUpdate isolates the local book-mirror stage: applying
// decoded incremental refreshes to the fixed-depth level arrays.
func BenchmarkStageBookUpdate(b *testing.B) {
	ticks := tickTrace(b)
	var msgs []*sbe.IncrementalRefresh
	for i := range ticks {
		pkt, err := sbe.DecodePacket(ticks[i].Packet)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range pkt.Messages {
			if m.Incremental != nil {
				msgs = append(msgs, m.Incremental)
			}
		}
	}
	p, _ := benchPipeline(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.applyIncremental(msgs[i%len(msgs)])
	}
}

// BenchmarkStageSnapshotFeature isolates snapshot capture plus feature-map
// assembly and the trading decision (the stages downstream of the book),
// with the accelerator answer stubbed.
func BenchmarkStageSnapshotFeature(b *testing.B) {
	ticks := tickTrace(b)
	p, fh := benchPipeline(b, true)
	var seq uint32
	for i := 0; i < len(ticks); i++ {
		runTick(b, p, fh, ticks, i, &seq)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var dst []exchange.Request
	for i := 0; i < b.N; i++ {
		reqs, err := p.onTick(int64(i), dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		dst = reqs
		for _, req := range reqs {
			p.OnExecReport(exchange.ExecReport{
				Exec: exchange.ExecCanceled, ClOrdID: req.ClOrdID,
				SecurityID: req.SecurityID, Side: req.Side,
				Price: req.Price, Qty: req.Qty,
			})
		}
	}
}

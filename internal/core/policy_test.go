package core

// Engine-level checks for the pluggable scheduler: every registered policy,
// driven through the real simulator, must respect the system's hard
// invariants — the card power budget is never exceeded and an accelerator
// never takes a second batch while one is in flight. The default path must
// also be provably unchanged: a nil factory and the explicit "ppw" factory
// produce identical metrics.

import (
	"testing"

	"lighttrader/internal/nn"
	"lighttrader/internal/sched"
	"lighttrader/internal/sim"
)

// policyQueries builds a deterministic bursty stream: clustered arrivals
// (queue pressure forces batching decisions) with a few tight deadlines
// (defer paths) over a generous base budget.
func policyQueries() []sim.Query {
	var qs []sim.Query
	now := int64(0)
	id := int64(0)
	for burst := 0; burst < 60; burst++ {
		n := 1 + burst%7
		for i := 0; i < n; i++ {
			tAvail := int64(5_000_000)
			if (id % 11) == 0 {
				tAvail = 150_000 // occasionally tight: exercises defer verdicts
			}
			qs = append(qs, sim.Query{
				ID: id, ArrivalNanos: now + int64(i)*2_000,
				DeadlineNanos: now + int64(i)*2_000 + tAvail,
			})
			id++
		}
		now += 400_000
	}
	return qs
}

// invariantProbe checks power samples against the budget and issue events
// against per-accelerator busy intervals. A batch emits one QueryIssue per
// member query with identical (time, done); those are one issue, not many.
type busyInterval struct{ issueAt, done int64 }

type invariantProbe struct {
	t      *testing.T
	budget float64
	busy   map[int]busyInterval
}

func (p *invariantProbe) OnQueryEvent(e sim.QueryEvent) {
	if e.Kind != sim.QueryIssue {
		return
	}
	b, ok := p.busy[e.Accel]
	if ok && e.TimeNanos == b.issueAt && e.DoneNanos == b.done {
		return // same batch, per-query event
	}
	if ok && e.TimeNanos < b.done {
		p.t.Errorf("accel %d issued at %d while busy until %d", e.Accel, e.TimeNanos, b.done)
	}
	p.busy[e.Accel] = busyInterval{issueAt: e.TimeNanos, done: e.DoneNanos}
}

func (p *invariantProbe) OnDVFSEvent(e sim.DVFSEvent) {
	if e.RetimedNanos != 0 {
		// A retime shifts the in-flight batch's completion.
		b := p.busy[e.Accel]
		b.done += e.RetimedNanos
		p.busy[e.Accel] = b
	}
}

func (p *invariantProbe) OnSample(s sim.Sample) {
	if s.PowerWatts > p.budget+1e-9 {
		p.t.Errorf("power sample %.2f W exceeds budget %.2f W at %d", s.PowerWatts, p.budget, s.TimeNanos)
	}
}

// TestEveryPolicyRespectsEngineInvariants drives every registered policy
// through the simulator on WS and WS+DS configurations under the limited
// envelope and checks the probe-visible invariants plus full accounting.
func TestEveryPolicyRespectsEngineInvariants(t *testing.T) {
	queries := policyQueries()
	for _, name := range sched.SchedulerNames() {
		factory, err := sched.FactoryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, ds := range []bool{false, true} {
			cfg, err := Configure(nn.NewSizedCNN("policy-inv", 8, 0), 2, Limited, Options{
				WorkloadScheduling: true, DVFSScheduling: ds, Scheduler: factory,
			})
			if err != nil {
				t.Fatal(err)
			}
			sys, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			probe := &invariantProbe{t: t, budget: cfg.Sched.PowerBudgetWatts, busy: map[int]busyInterval{}}
			m := sim.RunWithOptions(queries, sys, sim.WithProbe(probe))
			if m.Unaccounted != 0 {
				t.Errorf("%s ds=%v: %d unaccounted queries", name, ds, m.Unaccounted)
			}
			if m.Responded == 0 {
				t.Errorf("%s ds=%v: policy served nothing", name, ds)
			}
		}
	}
}

// TestPPWFactoryMatchesDefaultPath: the explicit "ppw" factory and the nil
// default must be indistinguishable — same system name, same metrics.
func TestPPWFactoryMatchesDefaultPath(t *testing.T) {
	queries := policyQueries()
	run := func(factory sched.Factory) sim.Metrics {
		cfg, err := Configure(nn.NewSizedCNN("policy-eq", 8, 0), 2, Limited, Options{
			WorkloadScheduling: true, DVFSScheduling: true, Scheduler: factory,
		})
		if err != nil {
			t.Fatal(err)
		}
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run(queries, sys)
	}
	ppw, err := sched.FactoryByName("ppw")
	if err != nil {
		t.Fatal(err)
	}
	def, explicit := run(nil), run(ppw)
	if def != explicit {
		t.Fatalf("default path diverged from explicit ppw factory:\n  nil: %+v\n  ppw: %+v", def, explicit)
	}
}

// TestNonDefaultPolicyTagged: a non-default policy shows up in the system
// name (and therefore in every metrics line); the default keeps the
// historical name byte-identically.
func TestNonDefaultPolicyTagged(t *testing.T) {
	build := func(factory sched.Factory) *System {
		cfg, err := Configure(nn.NewSizedCNN("policy-tag", 8, 0), 2, Limited, Options{
			WorkloadScheduling: true, Scheduler: factory,
		})
		if err != nil {
			t.Fatal(err)
		}
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	if name := build(nil).Name(); name != "LightTrader[policy-tag,N=2,WS]" {
		t.Fatalf("default name = %q changed", name)
	}
	fcfs, err := sched.FactoryByName("fcfs")
	if err != nil {
		t.Fatal(err)
	}
	if name := build(fcfs).Name(); name != "LightTrader[policy-tag,N=2,WS,fcfs]" {
		t.Fatalf("fcfs name = %q", name)
	}
}

// TestNewSystemValidatesConfig: construction rejects configs the scheduling
// decisions cannot operate on.
func TestNewSystemValidatesConfig(t *testing.T) {
	cfg, err := Configure(nn.NewSizedCNN("policy-val", 8, 0), 1, Limited, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sched.PowerBudgetWatts = 0
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("NewSystem accepted a zero power budget")
	}
}

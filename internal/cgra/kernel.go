package cgra

import "fmt"

// Precision selects the execution data type (§III-C): BF16 is the default
// for accuracy across irregular HFT networks; INT8 runs on the 4×-wider
// low-precision SIMD lanes when latency is prioritised over accuracy.
type Precision uint8

const (
	// PrecisionBF16 is the accelerator's main computational precision.
	PrecisionBF16 Precision = iota
	// PrecisionINT8 quadruples matmul lane width at reduced accuracy.
	PrecisionINT8
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	switch p {
	case PrecisionBF16:
		return "bf16"
	case PrecisionINT8:
		return "int8"
	default:
		return fmt.Sprintf("Precision(%d)", uint8(p))
	}
}

// LaneMultiplier returns the SIMD width factor relative to BF16.
func (p Precision) LaneMultiplier() int {
	if p == PrecisionINT8 {
		return 4
	}
	return 1
}

// ElementBytes returns the storage size per tensor element.
func (p Precision) ElementBytes() int64 {
	if p == PrecisionINT8 {
		return 1
	}
	return 2
}

// BlockKind classifies a hyperblock's execution character, which determines
// how it scales with batch size and which resources it stresses.
type BlockKind uint8

const (
	// KindMatmul covers convolutions, dense layers and attention
	// projections: data-parallel inner products mapped across the grid.
	KindMatmul BlockKind = iota
	// KindRecurrent covers time-sequential blocks (LSTM steps): the time
	// loop cannot be parallelised, only the per-step work.
	KindRecurrent
	// KindElementwise covers activations, pooling, residual adds, norms.
	KindElementwise
	// KindFormat covers pure layout transformation through the FMT.
	KindFormat
)

// String implements fmt.Stringer.
func (k BlockKind) String() string {
	switch k {
	case KindMatmul:
		return "matmul"
	case KindRecurrent:
		return "recurrent"
	case KindElementwise:
		return "elementwise"
	case KindFormat:
		return "format"
	default:
		return fmt.Sprintf("BlockKind(%d)", uint8(k))
	}
}

// Hyperblock is one schedulable unit produced by the compiler: a group of
// operations mapped together onto the PE grid, with batch-1 cycle costs.
type Hyperblock struct {
	Name string
	Kind BlockKind
	// ComputeCycles is the tensor-engine cycle count at batch 1.
	ComputeCycles int64
	// MemCycles is the DMEM/LSU transfer cycle count at batch 1; the block
	// runs in max(compute, mem) thanks to double buffering.
	MemCycles int64
	// FMTCycles is layout-transformation time not hidden behind compute.
	FMTCycles int64
	// ParallelBatch is how many batch elements the grid co-executes at no
	// extra cost (spare PEs), the source of batch-insensitive latency.
	ParallelBatch int
	// NeedsEPE marks blocks evaluating exponential-class functions.
	NeedsEPE bool
	// FLOPs is the arithmetic work at batch 1 (for utilisation accounting).
	FLOPs int64
}

// Cycles returns the block's cycle cost for the given batch size.
func (h *Hyperblock) Cycles(batch int) int64 {
	if batch < 1 {
		batch = 1
	}
	pb := h.ParallelBatch
	if pb < 1 {
		pb = 1
	}
	passes := int64((batch + pb - 1) / pb)
	compute := h.ComputeCycles * passes
	mem := h.MemCycles * int64(batch)
	cycles := compute
	if mem > cycles {
		cycles = mem
	}
	return cycles + h.FMTCycles
}

// Kernel is a compiled model image: the hyperblock schedule plus transfer
// and power metadata. Kernels are immutable after compilation and shared by
// all accelerators running the same model.
type Kernel struct {
	ModelName string
	// Precision is the execution data type the kernel was compiled for.
	Precision Precision
	Blocks    []Hyperblock
	// InputBytes is the C2C payload per batch element (BF16 feature map).
	InputBytes int64
	// OutputBytes is the C2C result payload per batch element.
	OutputBytes int64
	// WeightBytes is the resident parameter footprint in DMEM.
	WeightBytes int64
	// TotalFLOPs is the batch-1 arithmetic work.
	TotalFLOPs int64
	// Activity is the power-model activity factor in [0,1]: the
	// FLOP-weighted blend of grid utilisation, EPE duty and memory traffic
	// the compiler derives for this network.
	Activity float64
	// PeakActivationBytes is the largest inter-block activation footprint.
	PeakActivationBytes int64
	// InstrBytes estimates the compiled instruction-stream footprint.
	InstrBytes int64
	// SpillsToL2 marks kernels whose working set exceeds DMEM: activations
	// round-trip to the FPGA-side L2 over C2C (§III-C), which the compiler
	// reflects by inflating the affected blocks' memory cycles.
	SpillsToL2 bool
}

// CyclesForBatch sums hyperblock costs plus per-block issue overhead. The
// issue overhead grows with batch size — every extra sample adds DMA
// descriptors and per-sample synchronisation to the runtime hand-shake —
// at a quarter of the base cost per additional element, so batching
// improves throughput strongly but not freely.
func (k *Kernel) CyclesForBatch(spec Spec, batch int) int64 {
	if batch < 1 {
		batch = 1
	}
	overhead := spec.BlockOverheadCycles + spec.BlockOverheadCycles*int64(batch-1)/4
	var total int64
	for i := range k.Blocks {
		total += k.Blocks[i].Cycles(batch) + overhead
	}
	return total
}

// InferenceNanos returns the on-chip inference latency for a batch at a
// DVFS state, excluding C2C transfer (modelled by package c2c).
func (k *Kernel) InferenceNanos(spec Spec, d DVFSState, batch int) int64 {
	cycles := k.CyclesForBatch(spec, batch)
	return int64(float64(cycles) / d.FreqGHz)
}

// Utilisation returns achieved FLOPs per cycle divided by peak at batch 1.
func (k *Kernel) Utilisation(spec Spec) float64 {
	cycles := k.CyclesForBatch(spec, 1)
	if cycles == 0 {
		return 0
	}
	return float64(k.TotalFLOPs) / float64(cycles) / float64(spec.FLOPsPerCycle())
}

// EffectiveTFLOPS returns sustained TFLOPS for batch-1 inference at d.
func (k *Kernel) EffectiveTFLOPS(spec Spec, d DVFSState) float64 {
	ns := k.InferenceNanos(spec, d, 1)
	if ns == 0 {
		return 0
	}
	return float64(k.TotalFLOPs) / float64(ns) / 1e3
}

package cgra

import (
	"fmt"
	"math"

	"lighttrader/internal/tensor"
)

// Golden-model kernels: bit-accurate software references for what the
// tensor engine computes at each precision, built on the same blocked GEMM
// backend the host uses (internal/tensor). The compiler's cycle estimates
// describe *when* a hyperblock finishes; these functions describe *what*
// it produces, so accelerator-path results can be validated end to end
// against host inference.

// GoldenMatMul computes a×b ([m,k]×[k,n]) exactly as the tensor engine
// would at the given precision:
//
//   - PrecisionBF16: operands are rounded to BF16 storage, multiplied with
//     float32 accumulation (the MAC arrays accumulate in single precision),
//     and the result is rounded back to BF16 on writeback.
//   - PrecisionINT8: operands are symmetrically quantised per tensor to
//     int8, multiplied with exact int32 accumulation on the low-precision
//     lanes, and dequantised on writeback.
func GoldenMatMul(prec Precision, a, b *tensor.Tensor) *tensor.Tensor {
	switch prec {
	case PrecisionBF16:
		ar := a.Clone().RoundBF16()
		br := b.Clone().RoundBF16()
		return tensor.MatMul(ar, br).RoundBF16()
	case PrecisionINT8:
		return int8MatMul(a, b)
	default:
		panic(fmt.Sprintf("cgra: golden matmul: unsupported precision %v", prec))
	}
}

// QuantizeINT8 symmetrically quantises t to int8 codes with a per-tensor
// scale such that x ≈ float32(code)·scale. A zero tensor gets scale 1.
func QuantizeINT8(t *tensor.Tensor) ([]int8, float32) {
	var maxAbs float32
	for _, v := range t.Data() {
		if a := float32(math.Abs(float64(v))); a > maxAbs {
			maxAbs = a
		}
	}
	scale := maxAbs / 127
	if scale == 0 {
		scale = 1
	}
	codes := make([]int8, t.Size())
	for i, v := range t.Data() {
		q := math.RoundToEven(float64(v / scale))
		if q > 127 {
			q = 127
		}
		if q < -127 {
			q = -127
		}
		codes[i] = int8(q)
	}
	return codes, scale
}

// int8MatMul is the INT8 tensor-engine reference: int32 accumulation over
// int8 codes, dequantised on writeback.
func int8MatMul(a, b *tensor.Tensor) *tensor.Tensor {
	if a.Rank() != 2 || b.Rank() != 2 || a.Dim(1) != b.Dim(0) {
		panic(fmt.Sprintf("cgra: golden matmul shape mismatch %v × %v", a.Shape(), b.Shape()))
	}
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	qa, sa := QuantizeINT8(a)
	qb, sb := QuantizeINT8(b)
	out := tensor.New(m, n)
	of := out.Data()
	rescale := sa * sb
	for i := 0; i < m; i++ {
		arow := qa[i*k : (i+1)*k]
		orow := of[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			var acc int32
			for p, av := range arow {
				acc += int32(av) * int32(qb[p*n+j])
			}
			orow[j] = float32(acc) * rescale
		}
	}
	return out
}

// GoldenConv2D runs a convolution on the golden matmul: the host-side
// im2col patch matrix (cols, [K,N]) times the flattened weights
// (w, [OutC,K]) at the given precision. It mirrors how the compiler maps
// Conv2D onto a KindMatmul hyperblock behind the FMT.
func GoldenConv2D(prec Precision, w, cols *tensor.Tensor) *tensor.Tensor {
	return GoldenMatMul(prec, w, cols)
}

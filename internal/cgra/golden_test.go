package cgra

import (
	"math"
	"math/rand"
	"testing"

	"lighttrader/internal/tensor"
)

// naiveMatMul64 is an order-independent high-precision reference.
func naiveMatMul64(a, b *tensor.Tensor) []float64 {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := float64(a.Data()[i*k+p])
			for j := 0; j < n; j++ {
				out[i*n+j] += av * float64(b.Data()[p*n+j])
			}
		}
	}
	return out
}

func TestGoldenMatMulBF16(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 100; i++ {
		m, k, n := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		a, b := tensor.New(m, k), tensor.New(k, n)
		a.FillRandn(rng, 1)
		b.FillRandn(rng, 1)
		got := GoldenMatMul(PrecisionBF16, a, b)
		// The BF16 golden model must equal the host path run on the same
		// rounded operands: same GEMM backend, same writeback rounding.
		want := tensor.MatMul(a.Clone().RoundBF16(), b.Clone().RoundBF16()).RoundBF16()
		for j, w := range want.Data() {
			if got.Data()[j] != w {
				t.Fatalf("case %d elem %d: %v != %v", i, j, got.Data()[j], w)
			}
		}
		// Inputs must be left untouched (golden model clones).
		if a.Data()[0] != a.Clone().Data()[0] {
			t.Fatal("golden matmul mutated its input")
		}
	}
}

func TestGoldenMatMulINT8(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		m, k, n := 1+rng.Intn(16), 1+rng.Intn(16), 1+rng.Intn(16)
		a, b := tensor.New(m, k), tensor.New(k, n)
		a.FillRandn(rng, 1)
		b.FillRandn(rng, 1)
		got := GoldenMatMul(PrecisionINT8, a, b)
		// Recompute from the quantised codes in float64: int32 accumulation
		// is exact, so the results must match bit-for-bit after rescale.
		qa, sa := QuantizeINT8(a)
		qb, sb := QuantizeINT8(b)
		for ii := 0; ii < m; ii++ {
			for j := 0; j < n; j++ {
				var acc int64
				for p := 0; p < k; p++ {
					acc += int64(qa[ii*k+p]) * int64(qb[p*n+j])
				}
				want := float32(acc) * (sa * sb)
				if got.At2(ii, j) != want {
					t.Fatalf("case %d (%d,%d): %v != %v", i, ii, j, got.At2(ii, j), want)
				}
			}
		}
	}
}

// TestGoldenPrecisionError characterises the quantisation error of each
// precision against a float64 reference: BF16 stays within ~1%, INT8
// within the coarser bound its 8-bit codes admit. This is the documented
// accuracy ordering the paper's §III-C precision choice relies on.
func TestGoldenPrecisionError(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a, b := tensor.New(24, 32), tensor.New(32, 24)
	a.FillRandn(rng, 1)
	b.FillRandn(rng, 1)
	exact := naiveMatMul64(a, b)

	relErr := func(got *tensor.Tensor) float64 {
		var num, den float64
		for i, e := range exact {
			d := float64(got.Data()[i]) - e
			num += d * d
			den += e * e
		}
		return math.Sqrt(num / den)
	}
	bf16Err := relErr(GoldenMatMul(PrecisionBF16, a, b))
	int8Err := relErr(GoldenMatMul(PrecisionINT8, a, b))
	if bf16Err > 0.02 {
		t.Fatalf("bf16 relative error %v too large", bf16Err)
	}
	if int8Err > 0.2 {
		t.Fatalf("int8 relative error %v too large", int8Err)
	}
	if bf16Err >= int8Err {
		t.Fatalf("expected bf16 (%v) more accurate than int8 (%v)", bf16Err, int8Err)
	}
}

func TestQuantizeINT8Zero(t *testing.T) {
	z := tensor.New(3, 3)
	codes, scale := QuantizeINT8(z)
	if scale != 1 {
		t.Fatalf("zero tensor scale = %v", scale)
	}
	for _, c := range codes {
		if c != 0 {
			t.Fatal("zero tensor produced nonzero code")
		}
	}
}

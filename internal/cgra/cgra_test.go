package cgra

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpecPeaks(t *testing.T) {
	s := DefaultSpec()
	// Paper Table I / §III-C: ≈16 TFLOPS BF16 and ≈64 TOPS INT8.
	tflops := s.PeakTFLOPS(s.MaxFreqGHz)
	if tflops < 14 || tflops > 18 {
		t.Fatalf("BF16 peak = %.1f TFLOPS, want ≈16", tflops)
	}
	tops := s.PeakTOPS(s.MaxFreqGHz)
	if tops < 56 || tops > 72 {
		t.Fatalf("INT8 peak = %.1f TOPS, want ≈64", tops)
	}
}

func TestVoltageCurve(t *testing.T) {
	s := DefaultSpec()
	if v := s.VoltageAt(0.8); v != s.MinVolt {
		t.Fatalf("V(0.8) = %v", v)
	}
	if v := s.VoltageAt(2.2); v != s.MaxVolt {
		t.Fatalf("V(2.2) = %v", v)
	}
	if v := s.VoltageAt(0.5); v != s.MinVolt {
		t.Fatalf("V below range = %v", v)
	}
	if v := s.VoltageAt(3.0); v != s.MaxVolt {
		t.Fatalf("V above range = %v", v)
	}
	mid := s.VoltageAt(1.5)
	if mid <= s.MinVolt || mid >= s.MaxVolt {
		t.Fatalf("V(1.5) = %v not interior", mid)
	}
}

func TestDVFSTable(t *testing.T) {
	s := DefaultSpec()
	table := s.DVFSTable()
	if len(table) != 15 {
		t.Fatalf("table size = %d, want 15 (0.8…2.2 step 0.1)", len(table))
	}
	for i := 1; i < len(table); i++ {
		if table[i].FreqGHz <= table[i-1].FreqGHz {
			t.Fatal("table not ascending")
		}
		if table[i].Volt < table[i-1].Volt {
			t.Fatal("voltage not monotone with frequency")
		}
	}
	if table[0].FreqGHz != 0.8 || table[len(table)-1].FreqGHz != 2.2 {
		t.Fatalf("endpoints %v … %v", table[0], table[len(table)-1])
	}
}

func TestPowerCalibration(t *testing.T) {
	s := DefaultSpec()
	top := DVFSState{FreqGHz: s.MaxFreqGHz, Volt: s.MaxVolt}
	if p := s.Power(top, 1); math.Abs(p-s.MaxPowerWatts) > 1e-6 {
		t.Fatalf("P(top, act=1) = %.3f W, want %.1f (Table I)", p, s.MaxPowerWatts)
	}
	bottom := DVFSState{FreqGHz: s.MinFreqGHz, Volt: s.MinVolt}
	if p := s.Power(bottom, 1); p <= 0 || p >= s.MaxPowerWatts/3 {
		t.Fatalf("P(bottom) = %.3f W implausible", p)
	}
	if s.IdlePower(top) >= s.Power(top, 1) {
		t.Fatal("idle power not below active power")
	}
}

func TestQuickPowerMonotone(t *testing.T) {
	s := DefaultSpec()
	f := func(fi, ai uint8) bool {
		table := s.DVFSTable()
		d := table[int(fi)%len(table)]
		a1 := float64(ai%100) / 100
		a2 := a1 + 0.005
		// Monotone in activity at fixed state.
		if s.Power(d, a2) < s.Power(d, a1) {
			return false
		}
		// Monotone in DVFS state at fixed activity.
		if int(fi)%len(table) > 0 {
			prev := table[int(fi)%len(table)-1]
			if s.Power(d, a1) <= s.Power(prev, a1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerActivityClamped(t *testing.T) {
	s := DefaultSpec()
	d := s.DVFSTable()[5]
	if s.Power(d, -1) != s.Power(d, 0) {
		t.Fatal("negative activity not clamped")
	}
	if s.Power(d, 2) != s.Power(d, 1) {
		t.Fatal("activity > 1 not clamped")
	}
}

func TestMaxFreqUnderPower(t *testing.T) {
	s := DefaultSpec()
	// Generous budget: top state.
	d, ok := s.MaxFreqUnderPower(100, 1)
	if !ok || d.FreqGHz != s.MaxFreqGHz {
		t.Fatalf("generous budget gave %v %v", d, ok)
	}
	// Tight budget: must pick a lower state that actually fits.
	d, ok = s.MaxFreqUnderPower(3.0, 1)
	if !ok || d.FreqGHz >= s.MaxFreqGHz {
		t.Fatalf("tight budget gave %v %v", d, ok)
	}
	if s.Power(d, 1) > 3.0 {
		t.Fatalf("selected state %v draws %.2f W > 3.0", d, s.Power(d, 1))
	}
	// Impossible budget.
	if _, ok := s.MaxFreqUnderPower(0.1, 1); ok {
		t.Fatal("impossible budget satisfied")
	}
	// Frequency must not decrease when the budget grows.
	prevF := 0.0
	for _, budget := range []float64{1.5, 2, 3, 5, 8, 12} {
		if d, ok := s.MaxFreqUnderPower(budget, 1); ok {
			if d.FreqGHz < prevF {
				t.Fatalf("frequency dropped as budget grew: %v at %v W", d, budget)
			}
			prevF = d.FreqGHz
		}
	}
}

func TestHyperblockCycles(t *testing.T) {
	h := Hyperblock{ComputeCycles: 100, MemCycles: 20, FMTCycles: 5, ParallelBatch: 4}
	if c := h.Cycles(1); c != 105 {
		t.Fatalf("batch 1 = %d, want 105", c)
	}
	// Batch 4 co-executes: compute unchanged, mem scales.
	if c := h.Cycles(4); c != 105 {
		t.Fatalf("batch 4 = %d, want 105 (batch-insensitive)", c)
	}
	// Batch 5 needs a second pass.
	if c := h.Cycles(5); c != 205 {
		t.Fatalf("batch 5 = %d, want 205", c)
	}
	// Batch 16: compute 4 passes (400) vs mem 320 → compute-bound.
	if c := h.Cycles(16); c != 405 {
		t.Fatalf("batch 16 = %d, want max(400,320)+5 = 405", c)
	}
	// A memory-heavy block goes memory-bound at large batch.
	hm := Hyperblock{ComputeCycles: 100, MemCycles: 80, ParallelBatch: 4}
	if c := hm.Cycles(16); c != 80*16 {
		t.Fatalf("mem-bound batch 16 = %d, want 1280", c)
	}
}

func TestHyperblockCyclesDefensive(t *testing.T) {
	h := Hyperblock{ComputeCycles: 10}
	if h.Cycles(0) != h.Cycles(1) {
		t.Fatal("batch 0 not clamped")
	}
	if h.Cycles(-3) != h.Cycles(1) {
		t.Fatal("negative batch not clamped")
	}
}

func TestKernelLatencyScalesWithFrequency(t *testing.T) {
	s := DefaultSpec()
	k := &Kernel{Blocks: []Hyperblock{{ComputeCycles: 10000, ParallelBatch: 1}}, TotalFLOPs: 1e6}
	lo := k.InferenceNanos(s, DVFSState{FreqGHz: 1.0, Volt: 0.8}, 1)
	hi := k.InferenceNanos(s, DVFSState{FreqGHz: 2.0, Volt: 1.1}, 1)
	if hi >= lo {
		t.Fatalf("latency did not improve with frequency: %d vs %d", hi, lo)
	}
	ratio := float64(lo) / float64(hi)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("2× frequency gave %.2fx speedup", ratio)
	}
}

func TestKernelUtilisationBounds(t *testing.T) {
	s := DefaultSpec()
	// A perfectly mapped block: peak FLOPs each cycle.
	k := &Kernel{
		Blocks:     []Hyperblock{{ComputeCycles: 1000, ParallelBatch: 1}},
		TotalFLOPs: 1000 * s.FLOPsPerCycle(),
	}
	u := k.Utilisation(s)
	if u <= 0 || u > 1 {
		t.Fatalf("utilisation = %v", u)
	}
}

func TestBlockKindString(t *testing.T) {
	for k, want := range map[BlockKind]string{
		KindMatmul: "matmul", KindRecurrent: "recurrent",
		KindElementwise: "elementwise", KindFormat: "format",
	} {
		if k.String() != want {
			t.Fatalf("%d = %q", k, k.String())
		}
	}
}

// Package cgra models the paper's custom AI accelerator: a Coarse-Grained
// Reconfigurable Array fabricated in 7 nm (Table I: 0.68–1.16 V, up to
// 2.2 GHz, up to 10.8 W) with a tensor engine of regular PEs and extended
// PEs (EPEs), a memory engine (DMEM/IMEM/LSU/FMT), DVFS states, and a
// calibrated analytical power model. The real silicon is replaced by this
// cycle/power model per the DESIGN.md substitution table; the experiments
// consume only latency(model, batch, DVFS) and power(DVFS, activity)
// curves, which this package produces from the same first-order physics.
package cgra

import (
	"fmt"
	"math"
)

// Spec describes one accelerator's hardware configuration.
type Spec struct {
	// GridRows × GridCols is the tensor-engine PE grid.
	GridRows, GridCols int
	// EPECols of the grid columns are extended PEs handling
	// exponential/logarithmic/shift operations.
	EPECols int
	// SIMDLanes is the BF16 lane count per PE; INT8 runs 4× wider.
	SIMDLanes int
	// DMEMBytes is the on-chip data memory; kernels whose working set
	// exceeds it spill to the FPGA-side L2 over C2C.
	DMEMBytes int
	// IMEMBytes is the instruction memory.
	IMEMBytes int
	// DMEMBandwidth is bytes per cycle between DMEM and the PE grid.
	DMEMBandwidth int
	// FMTBandwidth is elements per cycle through the data formatter.
	FMTBandwidth int
	// Frequency and voltage envelope (Table I).
	MinFreqGHz, MaxFreqGHz float64
	MinVolt, MaxVolt       float64
	// MaxPowerWatts is the per-chip power ceiling.
	MaxPowerWatts float64
	// BlockOverheadCycles is the fixed cost to issue one hyperblock:
	// instruction streaming into the per-PE queues, pipeline fill/drain,
	// and the prototype's host-engaged runtime synchronisation (§III-E:
	// function calls from the trading application through the HFT driver
	// over PCIe/XDMA per issued command stream). The value is calibrated
	// so batch-1 inference latency matches the prototype measurements of
	// Fig. 11a (119/160/296 µs for the three benchmark models, whose
	// kernels compile to 8/12/20 hyperblocks respectively).
	BlockOverheadCycles int64
	// DVFSSwitchNanos is the PMIC + PLL relock delay when changing the
	// DVFS state; the accelerator cannot start a batch during the switch.
	DVFSSwitchNanos int64
}

// DefaultSpec returns the prototype configuration. The grid is sized so
// BF16 peak ≈ 16 TFLOPS and INT8 peak ≈ 64 TOPS at 2.2 GHz, matching the
// paper's headline numbers.
func DefaultSpec() Spec {
	return Spec{
		GridRows: 16, GridCols: 16, EPECols: 2, SIMDLanes: 16,
		DMEMBytes: 4 << 20, IMEMBytes: 512 << 10,
		DMEMBandwidth: 256, FMTBandwidth: 64,
		MinFreqGHz: 0.8, MaxFreqGHz: 2.2,
		MinVolt: 0.68, MaxVolt: 1.16,
		MaxPowerWatts:       10.8,
		BlockOverheadCycles: 32_000,
		DVFSSwitchNanos:     2_000,
	}
}

// RegularPEs returns the number of MAC-oriented PEs.
func (s Spec) RegularPEs() int { return s.GridRows * (s.GridCols - s.EPECols) }

// EPEs returns the number of extended PEs.
func (s Spec) EPEs() int { return s.GridRows * s.EPECols }

// FLOPsPerCycle is the BF16 peak per cycle: each regular PE retires
// SIMDLanes fused multiply-adds (2 FLOPs each).
func (s Spec) FLOPsPerCycle() int64 {
	return int64(s.RegularPEs()) * int64(s.SIMDLanes) * 2
}

// PeakTFLOPS returns the BF16 peak at freqGHz.
func (s Spec) PeakTFLOPS(freqGHz float64) float64 {
	return float64(s.FLOPsPerCycle()) * freqGHz / 1e3
}

// PeakTOPS returns the INT8 peak at freqGHz (4× the BF16 lane width).
func (s Spec) PeakTOPS(freqGHz float64) float64 { return 4 * s.PeakTFLOPS(freqGHz) }

// DVFSState is one operating point.
type DVFSState struct {
	FreqGHz float64
	Volt    float64
}

// String implements fmt.Stringer.
func (d DVFSState) String() string { return fmt.Sprintf("%.1fGHz/%.2fV", d.FreqGHz, d.Volt) }

// VoltageAt returns the minimum stable voltage for freqGHz, interpolated
// linearly across the envelope (the shape of a 7 nm Vmin curve over this
// narrow range).
func (s Spec) VoltageAt(freqGHz float64) float64 {
	if freqGHz <= s.MinFreqGHz {
		return s.MinVolt
	}
	if freqGHz >= s.MaxFreqGHz {
		return s.MaxVolt
	}
	frac := (freqGHz - s.MinFreqGHz) / (s.MaxFreqGHz - s.MinFreqGHz)
	return s.MinVolt + frac*(s.MaxVolt-s.MinVolt)
}

// DVFSTable enumerates the operating points the scheduler may select,
// 0.1 GHz apart across the envelope (lowest first).
func (s Spec) DVFSTable() []DVFSState {
	var table []DVFSState
	for f := s.MinFreqGHz; f <= s.MaxFreqGHz+1e-9; f += 0.1 {
		fr := math.Round(f*10) / 10
		table = append(table, DVFSState{FreqGHz: fr, Volt: s.VoltageAt(fr)})
	}
	return table
}

// Power model calibration. Dynamic power is k·V²·f·(a0 + a1·activity) and
// leakage scales with V²; k is chosen so that the top DVFS state at full
// activity dissipates exactly MaxPowerWatts.
const (
	leakageWattsAtVnom = 0.9
	activityFloor      = 0.30 // clock tree + control fabric, even when idle-spinning
	activitySlope      = 0.70
)

// dynCoeff returns k in watts per (V²·GHz).
func (s Spec) dynCoeff() float64 {
	vmax := s.MaxVolt
	return (s.MaxPowerWatts - leakageWattsAtVnom) /
		(vmax * vmax * s.MaxFreqGHz * (activityFloor + activitySlope))
}

// Power returns the chip power in watts at state d with the given workload
// activity ∈ [0,1] (0 = idle but clocked, 1 = fully active tensor engine).
func (s Spec) Power(d DVFSState, activity float64) float64 {
	if activity < 0 {
		activity = 0
	}
	if activity > 1 {
		activity = 1
	}
	vr := d.Volt / s.MaxVolt
	leak := leakageWattsAtVnom * vr * vr
	dyn := s.dynCoeff() * d.Volt * d.Volt * d.FreqGHz * (activityFloor + activitySlope*activity)
	return leak + dyn
}

// IdlePower returns the power at state d with no work issued.
func (s Spec) IdlePower(d DVFSState) float64 { return s.Power(d, 0) }

// MaxFreqUnderPower returns the fastest DVFS state whose power at the given
// activity fits within budgetWatts, and false when even the lowest state
// does not fit.
func (s Spec) MaxFreqUnderPower(budgetWatts, activity float64) (DVFSState, bool) {
	table := s.DVFSTable()
	for i := len(table) - 1; i >= 0; i-- {
		if s.Power(table[i], activity) <= budgetWatts {
			return table[i], true
		}
	}
	return DVFSState{}, false
}

// Package faultnet injects deterministic, seeded network faults into
// net.PacketConn and net.Conn so chaos runs over the live wire path are
// reproducible. The datagram wrapper models what lossy redundant UDP feeds
// deliver — drops, duplicates, bounded reordering, bit corruption — and the
// stream wrapper models sick order-entry links: frames split mid-byte
// across TCP segments, stalls, and abrupt resets. All decisions come from a
// caller-seeded PRNG, so a failing chaos test replays exactly.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedReset is returned by a faulted Conn once its byte budget is
// exhausted; the underlying connection is closed abruptly, as a mid-session
// network reset would.
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// PacketFaults selects datagram fault probabilities, each in [0,1].
type PacketFaults struct {
	// Seed makes the fault sequence deterministic.
	Seed int64
	// Drop is the probability an inbound datagram is silently discarded.
	Drop float64
	// Duplicate is the probability a datagram is delivered twice.
	Duplicate float64
	// Reorder is the probability a datagram is held back and delivered
	// after the next one (bounded single-packet reordering).
	Reorder float64
	// Corrupt is the probability one byte of the datagram is flipped.
	Corrupt float64
}

// PacketStats counts injected datagram faults.
type PacketStats struct {
	Received   int // datagrams read from the wrapped conn
	Delivered  int // datagrams handed to the caller (incl. duplicates)
	Dropped    int
	Duplicated int
	Reordered  int
	Corrupted  int
}

type datagram struct {
	buf  []byte
	addr net.Addr
}

// PacketConn wraps a net.PacketConn, applying faults on the read side.
// Deadlines, LocalAddr, WriteTo, and Close pass through. It is safe for a
// single reader; concurrent ReadFrom calls are serialised.
type PacketConn struct {
	net.PacketConn

	mu      sync.Mutex
	rng     *rand.Rand
	faults  PacketFaults
	enabled bool
	queue   []datagram // duplicates and released reorder holds
	held    *datagram  // datagram delayed behind the next arrival
	stats   PacketStats
}

// WrapPacketConn applies seeded faults to inner's read path. Faults start
// enabled; SetEnabled(false) turns the wrapper into a passthrough (chaos
// tests use this to quiesce).
func WrapPacketConn(inner net.PacketConn, f PacketFaults) *PacketConn {
	return &PacketConn{
		PacketConn: inner,
		rng:        rand.New(rand.NewSource(f.Seed)),
		faults:     f,
		enabled:    true,
	}
}

// SetEnabled switches fault injection on or off. Disabling releases any
// held datagram on the next read.
func (c *PacketConn) SetEnabled(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enabled = on
}

// Stats returns fault counters.
func (c *PacketConn) Stats() PacketStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ReadFrom delivers the next datagram after fault arbitration. Held
// (reordered) datagrams are flushed when a read deadline expires, so
// bounded reordering never becomes loss at quiesce.
func (c *PacketConn) ReadFrom(p []byte) (int, net.Addr, error) {
	for {
		c.mu.Lock()
		if len(c.queue) > 0 {
			d := c.queue[0]
			c.queue = c.queue[1:]
			c.stats.Delivered++
			c.mu.Unlock()
			return copy(p, d.buf), d.addr, nil
		}
		if !c.enabled && c.held != nil {
			d := c.held
			c.held = nil
			c.stats.Delivered++
			c.mu.Unlock()
			return copy(p, d.buf), d.addr, nil
		}
		c.mu.Unlock()

		n, addr, err := c.PacketConn.ReadFrom(p)
		if err != nil {
			// Flush a held datagram instead of surfacing a timeout, so the
			// reorder hold cannot outlive the stream.
			c.mu.Lock()
			if c.held != nil {
				d := c.held
				c.held = nil
				c.stats.Delivered++
				c.mu.Unlock()
				return copy(p, d.buf), d.addr, nil
			}
			c.mu.Unlock()
			return n, addr, err
		}

		c.mu.Lock()
		c.stats.Received++
		if !c.enabled {
			c.stats.Delivered++
			c.mu.Unlock()
			return n, addr, nil
		}
		roll := c.rng.Float64()
		switch {
		case roll < c.faults.Drop:
			c.stats.Dropped++
			c.mu.Unlock()
			continue
		case roll < c.faults.Drop+c.faults.Reorder && c.held == nil:
			c.stats.Reordered++
			c.held = &datagram{buf: append([]byte(nil), p[:n]...), addr: addr}
			c.mu.Unlock()
			continue
		}
		// Release a held datagram behind this one.
		if c.held != nil {
			c.queue = append(c.queue, *c.held)
			c.held = nil
		}
		if c.rng.Float64() < c.faults.Duplicate {
			c.stats.Duplicated++
			c.queue = append(c.queue, datagram{buf: append([]byte(nil), p[:n]...), addr: addr})
		}
		if n > 0 && c.rng.Float64() < c.faults.Corrupt {
			c.stats.Corrupted++
			p[c.rng.Intn(n)] ^= 0xFF
		}
		c.stats.Delivered++
		c.mu.Unlock()
		return n, addr, nil
	}
}

// ConnFaults selects stream fault behaviour.
type ConnFaults struct {
	// Seed makes chunk sizes and stall points deterministic.
	Seed int64
	// MaxChunk > 0 splits every Write into chunks of 1..MaxChunk bytes, so
	// frames straddle TCP segments and the peer's read boundaries.
	MaxChunk int
	// StallEvery > 0 sleeps Stall before every Nth chunk written.
	StallEvery int
	Stall      time.Duration
	// ResetAfter > 0 abruptly closes the connection once that many bytes
	// have crossed it (reads + writes combined); subsequent operations
	// return ErrInjectedReset.
	ResetAfter int64
}

// ConnStats counts injected stream faults.
type ConnStats struct {
	BytesRead    int64
	BytesWritten int64
	Chunks       int
	Stalls       int
	Resets       int
}

// Conn wraps a net.Conn with fault injection on both directions.
type Conn struct {
	net.Conn

	mu     sync.Mutex
	rng    *rand.Rand
	faults ConnFaults
	moved  int64 // bytes read + written
	reset  bool
	chunkN int
	stats  ConnStats
}

// WrapConn applies seeded stream faults to inner.
func WrapConn(inner net.Conn, f ConnFaults) *Conn {
	return &Conn{
		Conn:   inner,
		rng:    rand.New(rand.NewSource(f.Seed)),
		faults: f,
	}
}

// Stats returns fault counters.
func (c *Conn) Stats() ConnStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// tripped reports (and applies) the reset budget; callers hold no locks.
func (c *Conn) tripped(add int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reset {
		return true
	}
	c.moved += add
	if c.faults.ResetAfter > 0 && c.moved >= c.faults.ResetAfter {
		c.reset = true
		c.stats.Resets++
		c.Conn.Close()
		return true
	}
	return false
}

// Read passes through until the reset budget trips.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.reset {
		c.mu.Unlock()
		return 0, ErrInjectedReset
	}
	c.mu.Unlock()
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.stats.BytesRead += int64(n)
	c.mu.Unlock()
	if c.tripped(int64(n)) && err == nil {
		return n, ErrInjectedReset
	}
	return n, err
}

// Write splits into chunks, stalls, and enforces the reset budget. A write
// interrupted by a reset reports the injected error with a partial count,
// exactly as a torn TCP session would.
func (c *Conn) Write(p []byte) (int, error) {
	written := 0
	for written < len(p) {
		c.mu.Lock()
		if c.reset {
			c.mu.Unlock()
			return written, ErrInjectedReset
		}
		chunk := len(p) - written
		if c.faults.MaxChunk > 0 && chunk > 1 {
			chunk = 1 + c.rng.Intn(min(c.faults.MaxChunk, chunk))
		}
		c.chunkN++
		c.stats.Chunks++
		stall := c.faults.StallEvery > 0 && c.chunkN%c.faults.StallEvery == 0
		if stall {
			c.stats.Stalls++
		}
		c.mu.Unlock()
		if stall && c.faults.Stall > 0 {
			time.Sleep(c.faults.Stall)
		}
		n, err := c.Conn.Write(p[written : written+chunk])
		written += n
		c.mu.Lock()
		c.stats.BytesWritten += int64(n)
		c.mu.Unlock()
		if err != nil {
			return written, err
		}
		if c.tripped(int64(n)) {
			return written, ErrInjectedReset
		}
	}
	return written, nil
}

// String describes the configured faults (for test logs).
func (f PacketFaults) String() string {
	return fmt.Sprintf("seed=%d drop=%.2f dup=%.2f reorder=%.2f corrupt=%.2f",
		f.Seed, f.Drop, f.Duplicate, f.Reorder, f.Corrupt)
}

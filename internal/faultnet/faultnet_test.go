package faultnet

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

// udpPair returns a bound receiver and a sender dialled to it.
func udpPair(t *testing.T) (net.PacketConn, net.Conn) {
	t.Helper()
	recv, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Close() })
	send, err := net.Dial("udp", recv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { send.Close() })
	return recv, send
}

// runPacketTrial sends n numbered datagrams through a faulted wrapper and
// returns the delivered payload sequence.
func runPacketTrial(t *testing.T, f PacketFaults, n int) ([]byte, PacketStats) {
	t.Helper()
	recv, send := udpPair(t)
	fc := WrapPacketConn(recv, f)
	var got []byte
	buf := make([]byte, 64)
	// Loopback UDP preserves arrival order, so sending everything first and
	// draining once keeps the trial fast and the fault sequence identical.
	for i := 0; i < n; i++ {
		if _, err := send.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for {
		fc.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		rn, _, err := fc.ReadFrom(buf)
		if err != nil {
			break
		}
		got = append(got, buf[:rn]...)
	}
	return got, fc.Stats()
}

func TestPacketFaultsDeterministic(t *testing.T) {
	f := PacketFaults{Seed: 42, Drop: 0.2, Duplicate: 0.2, Reorder: 0.2, Corrupt: 0.1}
	a, statsA := runPacketTrial(t, f, 200)
	b, statsB := runPacketTrial(t, f, 200)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different delivery:\n%v\n%v", a, b)
	}
	if statsA != statsB {
		t.Fatalf("same seed, different stats: %+v vs %+v", statsA, statsB)
	}
	if statsA.Dropped == 0 || statsA.Duplicated == 0 || statsA.Reordered == 0 || statsA.Corrupted == 0 {
		t.Fatalf("fault classes not exercised: %+v", statsA)
	}
}

func TestPacketFaultsDisabledIsPassthrough(t *testing.T) {
	recv, send := udpPair(t)
	fc := WrapPacketConn(recv, PacketFaults{Seed: 1, Drop: 1.0})
	fc.SetEnabled(false)
	if _, err := send.Write([]byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	fc.SetReadDeadline(time.Now().Add(time.Second))
	n, _, err := fc.ReadFrom(buf)
	if err != nil || n != 1 || buf[0] != 0xAB {
		t.Fatalf("n=%d err=%v buf=%x", n, err, buf[:n])
	}
}

func TestPacketReorderFlushedOnTimeout(t *testing.T) {
	// Reorder=1 holds the first datagram; with no follow-up traffic the
	// deadline flush must deliver it rather than lose it.
	recv, send := udpPair(t)
	fc := WrapPacketConn(recv, PacketFaults{Seed: 7, Reorder: 1.0})
	if _, err := send.Write([]byte{0x01}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		fc.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		n, _, err := fc.ReadFrom(buf)
		if err == nil {
			if n != 1 || buf[0] != 0x01 {
				t.Fatalf("n=%d buf=%x", n, buf[:n])
			}
			return
		}
	}
	t.Fatal("held datagram never flushed")
}

func TestConnSplitWritesPreserveBytes(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	fc := WrapConn(client, ConnFaults{Seed: 3, MaxChunk: 3})

	payload := bytes.Repeat([]byte{1, 2, 3, 4, 5, 6, 7}, 40)
	errCh := make(chan error, 1)
	go func() {
		_, err := fc.Write(payload)
		errCh <- err
	}()
	got := make([]byte, 0, len(payload))
	tmp := make([]byte, 16)
	for len(got) < len(payload) {
		server.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, err := server.Read(tmp)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		got = append(got, tmp[:n]...)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("split writes corrupted the stream")
	}
	if fc.Stats().Chunks <= len(payload)/3 {
		t.Fatalf("writes were not split: %+v", fc.Stats())
	}
}

func TestConnInjectedReset(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	fc := WrapConn(client, ConnFaults{Seed: 9, ResetAfter: 10})

	go func() {
		tmp := make([]byte, 64)
		for {
			if _, err := server.Read(tmp); err != nil {
				return
			}
		}
	}()
	var err error
	for i := 0; i < 8 && err == nil; i++ {
		_, err = fc.Write([]byte{0, 1, 2, 3})
	}
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("err = %v, want ErrInjectedReset", err)
	}
	// The wrapped conn is closed and stays unusable.
	if _, err := fc.Write([]byte{1}); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset write err = %v", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset read err = %v", err)
	}
	if fc.Stats().Resets != 1 {
		t.Fatalf("stats %+v", fc.Stats())
	}
}

func TestConnStalls(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	fc := WrapConn(client, ConnFaults{Seed: 5, StallEvery: 2, Stall: 10 * time.Millisecond})
	go func() {
		tmp := make([]byte, 64)
		for {
			if _, err := server.Read(tmp); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	for i := 0; i < 4; i++ {
		if _, err := fc.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("stalls not applied: %v", elapsed)
	}
	if fc.Stats().Stalls < 2 {
		t.Fatalf("stats %+v", fc.Stats())
	}
}

package lighttrader

// Repository-level benchmarks: one per paper table and figure. Each bench
// regenerates its experiment through the same code paths as cmd/ltbench, so
// `go test -bench=. -benchmem` reproduces the full evaluation; the rendered
// tables are logged once per benchmark. Custom metrics expose the headline
// quantities (speed-ups, response rates, bandwidth ratio) so regressions in
// paper-shape show up as metric drift, not just time drift.

import (
	"sync"
	"testing"

	"lighttrader/internal/bench"
)

// benchTraffic is the shared, memoised experiment workload.
var (
	benchTrafficOnce sync.Once
	benchTrafficCfg  bench.TrafficConfig
)

func benchTraffic() bench.TrafficConfig {
	benchTrafficOnce.Do(func() {
		benchTrafficCfg = bench.DefaultTraffic().Scale(20000)
		benchTrafficCfg.Queries() // pre-generate outside timed sections
	})
	return benchTrafficCfg
}

func BenchmarkTableI(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = bench.RenderTableI()
	}
	logOnce(b, out)
	r := bench.TableIData()
	b.ReportMetric(r.PeakTFLOPS, "peak-TFLOPS")
	b.ReportMetric(r.PeakTOPS, "peak-TOPS")
}

func BenchmarkTableII(b *testing.B) {
	var rows []bench.TableIIRow
	for i := 0; i < b.N; i++ {
		rows = bench.TableIIData()
	}
	logOnce(b, bench.RenderTableII())
	b.ReportMetric(float64(rows[2].FLOPs)/float64(rows[0].FLOPs), "deeplob/cnn-flops")
}

func BenchmarkTableIII(b *testing.B) {
	var rows []bench.TableIIIRow
	for i := 0; i < b.N; i++ {
		rows = bench.TableIIIData()
	}
	logOnce(b, bench.RenderTableIII())
	b.ReportMetric(rows[len(rows)-1].FreqGHz["DeepLOB"], "limited-n16-GHz")
}

func BenchmarkFig8(b *testing.B) {
	tc := benchTraffic()
	var rows []bench.Fig8Row
	for i := 0; i < b.N; i++ {
		rows = bench.Fig8(tc)
	}
	logOnce(b, bench.RenderFig8(rows))
	b.ReportMetric(rows[0].ResponseRate-rows[4].ResponseRate, "m1-m5-response-gap")
}

func BenchmarkFig9(b *testing.B) {
	var r bench.Fig9Result
	for i := 0; i < b.N; i++ {
		r = bench.Fig9()
	}
	logOnce(b, bench.RenderFig9(r))
	b.ReportMetric(r.Ratio, "c2c/interlaken-bw")
}

func BenchmarkFig11(b *testing.B) {
	tc := benchTraffic()
	var rows []bench.Fig11Row
	for i := 0; i < b.N; i++ {
		rows = bench.Fig11(tc)
	}
	logOnce(b, bench.RenderFig11(rows))
	var gpu, fpga float64
	for _, r := range rows {
		gpu += float64(r.GPUNanos) / float64(r.LTNanos)
		fpga += float64(r.FPGANanos) / float64(r.LTNanos)
	}
	b.ReportMetric(gpu/3, "speedup-vs-gpu")
	b.ReportMetric(fpga/3, "speedup-vs-fpga")
}

func BenchmarkFig12(b *testing.B) {
	tc := benchTraffic()
	var rows []bench.Fig12Row
	for i := 0; i < b.N; i++ {
		rows = bench.Fig12(tc)
	}
	logOnce(b, bench.RenderFig12(rows))
	for _, r := range rows {
		if r.Model == "DeepLOB" && r.Condition == "sufficient" && r.NumAccels == 8 {
			b.ReportMetric(100*r.ResponseRate, "deeplob-n8-resp-%")
		}
	}
}

func BenchmarkFig13(b *testing.B) {
	tc := benchTraffic()
	var rows []bench.Fig13Row
	for i := 0; i < b.N; i++ {
		rows = bench.Fig13(tc)
	}
	logOnce(b, bench.RenderFig13(rows))
	s := bench.SummarizeFig13(rows)
	b.ReportMetric(100*s[0].WSSmallN, "cnn-ws-reduction-%")
	b.ReportMetric(100*s[2].BothAllN, "deeplob-wsds-reduction-%")
}

// logOnce emits the rendered experiment table a single time per bench.
var logged sync.Map

func logOnce(b *testing.B, out string) {
	if _, dup := logged.LoadOrStore(b.Name(), true); !dup {
		b.Log("\n" + out)
	}
}

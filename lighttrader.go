// Package lighttrader is a software reproduction of "LightTrader: A
// Standalone High-Frequency Trading System with Deep Learning Inference
// Accelerators and Proactive Scheduler" (HPCA 2023).
//
// It provides, behind one import path:
//
//   - the AI-enabled tick-to-trade pipeline (SBE market-data parsing,
//     limit-order-book maintenance, the offload engine's feature maps, DNN
//     inference, risk-checked order generation) — a fully functional
//     trading stack;
//   - the three benchmark networks (vanilla CNN, TransLOB, DeepLOB) with
//     real forward passes, plus the deep-learning compiler that lowers
//     them onto the modelled CGRA accelerator;
//   - the proactive scheduler: PPW-driven workload scheduling
//     (Algorithm 1) and DVFS power redistribution (Algorithm 2);
//   - the back-test simulation framework, the bursty CME-like traffic
//     generator, and GPU-/FPGA-based baseline system models.
//
// The quickest path from zero to a running back-test:
//
//	trace := lighttrader.GenerateTrace(lighttrader.DefaultTraceConfig(), 20000)
//	sys, _ := lighttrader.New(lighttrader.NewDeepLOB(),
//	    lighttrader.WithAccelerators(4),
//	    lighttrader.WithWorkloadScheduling(),
//	    lighttrader.WithDVFSScheduling())
//	metrics := lighttrader.Backtest(trace, 20*time.Millisecond, sys)
//	fmt.Printf("response rate: %.1f%%\n", 100*metrics.ResponseRate)
//
// For multi-symbol serving, subscribe instruments on a MultiPipeline and
// run them through NewServer — a concurrent runtime applying the proactive
// scheduler's batch/deadline decision online across worker lanes (see
// DESIGN.md §9). BacktestContext adds cancellation to long replays.
//
// See examples/ for runnable programs and DESIGN.md for the system
// inventory and per-experiment index.
package lighttrader

import (
	"io"
	"time"

	"lighttrader/internal/baseline"
	"lighttrader/internal/core"
	"lighttrader/internal/feed"
	"lighttrader/internal/lob"
	"lighttrader/internal/nn"
	"lighttrader/internal/offload"
	"lighttrader/internal/sim"
	"lighttrader/internal/tensor"
	"lighttrader/internal/trading"
)

// Model is a neural network with a real forward pass and per-layer FLOP
// accounting.
type Model = nn.Model

// Direction is a predicted price movement (Down, Stationary, Up).
type Direction = nn.Direction

// Direction values.
const (
	Down       = nn.Down
	Stationary = nn.Stationary
	Up         = nn.Up
)

// Benchmark models (paper Table II).
var (
	// NewVanillaCNN builds the plain CNN baseline.
	NewVanillaCNN = nn.NewVanillaCNN
	// NewTransLOB builds the CNN+Transformer model.
	NewTransLOB = nn.NewTransLOB
	// NewDeepLOB builds the CNN+LSTM model.
	NewDeepLOB = nn.NewDeepLOB
)

// ZooSpec parameterises one model-zoo variant: architecture family, width,
// depth, lookback and prediction-horizon heads, all generated on the shared
// GEMM backend. The benchmark models above are presets of this one
// construction path (see VanillaCNNSpec and friends).
type ZooSpec = nn.ZooSpec

// ZooArch selects a zoo variant's architecture family.
type ZooArch = nn.ZooArch

// Zoo architecture families.
const (
	ZooCNN         = nn.ZooCNN
	ZooLSTM        = nn.ZooLSTM
	ZooTransformer = nn.ZooTransformer
)

// BuildZoo builds one model-zoo variant. Equal specs produce byte-identical
// models, and every variant consumes the standard feature window, so zoo
// models are drop-in replacements anywhere a benchmark model is used —
// including the serving runtime's degrade ladder (WithModelZoo).
func BuildZoo(s ZooSpec) (*Model, error) { return nn.BuildZoo(s) }

// MustBuildZoo is BuildZoo, panicking on an invalid spec.
func MustBuildZoo(s ZooSpec) *Model { return nn.MustBuildZoo(s) }

// Preset zoo specs behind the benchmark constructors and the M1…M5 ladder.
var (
	VanillaCNNSpec = nn.VanillaCNNSpec
	DeepLOBSpec    = nn.DeepLOBSpec
	TransLOBSpec   = nn.TransLOBSpec
	SizedCNNSpec   = nn.SizedCNNSpec
)

// Tick is one market-data event: encoded packet plus book snapshot.
type Tick = feed.Tick

// TraceConfig controls synthetic market-data generation.
type TraceConfig = feed.GeneratorConfig

// DefaultTraceConfig returns ES-like bursty tick traffic parameters.
func DefaultTraceConfig() TraceConfig { return feed.DefaultGeneratorConfig() }

// GenerateTrace produces a deterministic synthetic tick trace.
func GenerateTrace(cfg TraceConfig, ticks int) []Tick {
	gen, err := feed.NewGenerator(cfg)
	if err != nil {
		panic(err) // configs from DefaultTraceConfig cannot fail
	}
	return gen.Generate(ticks)
}

// WriteTrace serialises a trace; ReadTrace loads one.
func WriteTrace(w io.Writer, symbol string, ticks []Tick) error {
	return feed.WriteTrace(w, symbol, ticks)
}

// ReadTrace deserialises a trace written by WriteTrace.
func ReadTrace(r io.Reader) (string, []Tick, error) { return feed.ReadTrace(r) }

// PowerCondition is a card-level power envelope.
type PowerCondition = core.PowerCondition

// The paper's two power conditions.
var (
	Sufficient = core.Sufficient
	Limited    = core.Limited
)

// SchedulerOptions selects the proactive-scheduler features.
type SchedulerOptions = core.Options

// System is anything the back-test can drive: LightTrader or a baseline.
type System = sim.SystemModel

// Metrics summarises one back-test run.
type Metrics = sim.Metrics

// NewLightTrader assembles a simulated LightTrader appliance: model
// compiled for the CGRA accelerator, n accelerators, the given power
// condition, and scheduler options.
//
// Deprecated: use New with functional options — New(m,
// WithAccelerators(n), WithPowerBudget(power), WithWorkloadScheduling(),
// ...). This wrapper remains for source compatibility.
func NewLightTrader(m *Model, n int, power PowerCondition, opts SchedulerOptions) (System, error) {
	cfg, err := core.Configure(m, n, power, opts)
	if err != nil {
		return nil, err
	}
	return core.NewSystem(cfg)
}

// NewGPUBaseline models the GPU-based comparison system (CPU + NIC + V100).
func NewGPUBaseline(m *Model) System { return baseline.NewGPU(m) }

// NewFPGABaseline models the FPGA-based comparison system (CPU + Alveo U250).
func NewFPGABaseline(m *Model) System { return baseline.NewFPGA(m) }

// Backtest replays a tick trace against a system with the given per-query
// available time (t_avail) and returns the metrics. Runs are deterministic.
func Backtest(ticks []Tick, tAvail time.Duration, sys System) Metrics {
	return sim.Run(sim.QueriesFromTicks(ticks, tAvail.Nanoseconds()), sys)
}

// Pipeline is the functional tick-to-trade path: packet in, order out, with
// a real DNN forward pass in the middle.
type Pipeline = core.Pipeline

// TradingConfig bounds the trading engine (order size, position limit,
// confidence threshold).
type TradingConfig = trading.Config

// DefaultTradingConfig returns conservative limits for one instrument.
func DefaultTradingConfig(securityID int32) TradingConfig {
	return trading.DefaultConfig(securityID)
}

// Normalizer holds the offload engine's Z-score statistics.
type Normalizer = offload.Normalizer

// CalibrateNormalizer profiles Z-score statistics from historical ticks.
func CalibrateNormalizer(ticks []Tick) Normalizer {
	snaps := make([]lob.Snapshot, len(ticks))
	for i := range ticks {
		snaps[i] = ticks[i].Snapshot
	}
	return offload.Calibrate(snaps)
}

// NewPipeline assembles the functional pipeline for one instrument.
func NewPipeline(symbol string, securityID int32, m *Model, norm Normalizer, tcfg TradingConfig) (*Pipeline, error) {
	return core.NewPipeline(symbol, securityID, m, norm, tcfg)
}

// FunctionalReport summarises a packet-level back-test (orders, fills,
// PnL marked to the final mid).
type FunctionalReport = core.FunctionalReport

// FunctionalBacktest replays a trace packet-by-packet through the
// functional pipeline with an immediate-fill execution model.
func FunctionalBacktest(ticks []Tick, p *Pipeline) (FunctionalReport, error) {
	return core.FunctionalBacktest(ticks, p)
}

// Trainer performs SGD training (paper Fig. 3's offline training stage).
// The CNN family and DeepLOB (via BPTT) are trainable; TransLOB's
// transformer blocks are inference-only.
type Trainer = nn.Trainer

// NewTrainer validates trainability and returns a trainer.
func NewTrainer(m *Model, lr float32) (*Trainer, error) { return nn.NewTrainer(m, lr) }

// NewSizedCNN builds a CNN with the given width and depth — the trainable
// model family (also the M1…M5 complexity ladder of paper Fig. 8).
func NewSizedCNN(name string, channels, extraConvs int) *Model {
	return nn.NewSizedCNN(name, channels, extraConvs)
}

// BuildDataset converts a tick trace into (feature map, label) training
// pairs per paper Fig. 3: horizon is the prediction horizon in ticks,
// threshold the relative mid move below which the label is Stationary.
func BuildDataset(ticks []Tick, norm Normalizer, horizon int, threshold float64) ([]*tensor.Tensor, []Direction) {
	return offload.BuildDataset(ticks, norm, horizon, threshold)
}

// Accuracy evaluates a model's classification accuracy over a dataset.
func Accuracy(m *Model, xs []*tensor.Tensor, labels []Direction) (float64, error) {
	return nn.Accuracy(m, xs, labels)
}

// Tensor is the dense float32 tensor type used for model inputs.
type Tensor = tensor.Tensor

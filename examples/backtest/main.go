// Backtest: the paper's evaluation loop in ~40 lines.
//
// Replays a bursty synthetic CME-like trace against LightTrader with 1…8
// accelerators and against the GPU- and FPGA-based baselines, printing the
// response-rate comparison of paper Figs. 11(b) and 12.
//
//	go run ./examples/backtest
package main

import (
	"fmt"
	"log"
	"time"

	"lighttrader"
)

func main() {
	const ticks = 20000
	const tAvail = 20 * time.Millisecond

	trace := lighttrader.GenerateTrace(lighttrader.DefaultTraceConfig(), ticks)
	model := lighttrader.NewDeepLOB()
	fmt.Printf("backtest: DeepLOB over %d ticks, t_avail %v\n\n", ticks, tAvail)

	fmt.Println("LightTrader (workload + DVFS scheduling, sufficient power):")
	for _, n := range []int{1, 2, 4, 8} {
		sys, err := lighttrader.New(model,
			lighttrader.WithAccelerators(n),
			lighttrader.WithWorkloadScheduling(),
			lighttrader.WithDVFSScheduling())
		if err != nil {
			log.Fatal(err)
		}
		m := lighttrader.Backtest(trace, tAvail, sys)
		fmt.Printf("  N=%2d accelerators: response %.2f%%  mean tick-to-trade %v  avg power %.1f W\n",
			n, 100*m.ResponseRate, time.Duration(m.MeanLatencyNanos).Round(time.Microsecond),
			m.AvgPowerWatts)
	}

	fmt.Println("\nBaselines:")
	for _, sys := range []lighttrader.System{
		lighttrader.NewGPUBaseline(model),
		lighttrader.NewFPGABaseline(model),
	} {
		m := lighttrader.Backtest(trace, tAvail, sys)
		fmt.Printf("  %-24s response %.2f%%  mean tick-to-trade %v\n",
			sys.Name(), 100*m.ResponseRate, time.Duration(m.MeanLatencyNanos).Round(time.Microsecond))
	}
}

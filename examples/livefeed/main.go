// Livefeed: the full tick-to-trade loop over real sockets, with optional
// network chaos.
//
// It boots the wire-level exchange simulator in-process (redundant A/B UDP
// market data out, TCP iLink-style order entry in) and runs the resilient
// live client from internal/trader against it: arbitrated dual-feed
// consumption, SBE parse → book → feature map → DNN inference → risk
// checks, and a FIXP-style order-entry session with heartbeats, keep-alive
// monitoring, reconnect with capped backoff, and cancel-on-disconnect.
//
//	go run ./examples/livefeed
//
// Fault injection (deterministic, seeded) exercises the degraded paths:
//
//	go run ./examples/livefeed -drop 0.3 -dup 0.1 -reorder 0.1
//	go run ./examples/livefeed -reset 4096
//
// With -drop et al. the A/B arbiter papers over per-feed loss and the
// periodic snapshots heal any residual gaps; with -reset the order-entry
// connection is torn down every N bytes and the client must keep
// re-establishing while flattening its resting orders.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"lighttrader"
	"lighttrader/internal/exchange"
	"lighttrader/internal/faultnet"
	"lighttrader/internal/orderentry"
	"lighttrader/internal/trader"
	"lighttrader/internal/venue"
)

const (
	securityID = 1
	symbol     = "ESU6"
)

func main() {
	var (
		runFor  = flag.Duration("dur", 3*time.Second, "how long to trade")
		drop    = flag.Float64("drop", 0, "per-feed datagram drop probability")
		dup     = flag.Float64("dup", 0, "per-feed duplicate probability")
		reorder = flag.Float64("reorder", 0, "per-feed reorder probability")
		corrupt = flag.Float64("corrupt", 0, "per-feed corruption probability")
		reset   = flag.Int64("reset", 0, "order-entry reset budget in bytes (0 = never)")
		seed    = flag.Int64("seed", 1, "fault sequence seed")
	)
	flag.Parse()

	// Two feed subscription sockets first, so the exchange knows where to
	// publish its redundant A and B streams.
	feedA, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer feedA.Close()
	feedB, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer feedB.Close()

	srv, err := venue.NewServer(venue.ServerConfig{
		OrderAddr:        "127.0.0.1:0",
		FeedAddr:         feedA.LocalAddr().String(),
		FeedAddrB:        feedB.LocalAddr().String(),
		SecurityID:       securityID,
		Symbol:           symbol,
		MidPrice:         450000,
		Depth:            100,
		NoiseInterval:    500 * time.Microsecond,
		NoiseSeed:        7,
		SnapshotInterval: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *runFor)
	defer cancel()
	go func() { _ = srv.Run(ctx) }()

	// Seeded faults on both feeds (distinct sequences) and, when asked, a
	// byte-budget reset on every order-entry dial.
	pf := faultnet.PacketFaults{Drop: *drop, Duplicate: *dup, Reorder: *reorder, Corrupt: *corrupt}
	pfA, pfB := pf, pf
	pfA.Seed = *seed
	pfB.Seed = *seed + 1
	faultA := faultnet.WrapPacketConn(feedA, pfA)
	faultB := faultnet.WrapPacketConn(feedB, pfB)

	dial := func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", srv.OrderAddr().String())
		if err != nil {
			return nil, err
		}
		if *reset > 0 {
			conn = faultnet.WrapConn(conn, faultnet.ConnFaults{Seed: *seed, ResetAfter: *reset})
		}
		return conn, nil
	}

	// Calibrate the normaliser offline, as the paper does with historical
	// data, then build the pipeline and wrap it in the resilient trader.
	calib := lighttrader.GenerateTrace(lighttrader.DefaultTraceConfig(), 500)
	tcfg := lighttrader.DefaultTradingConfig(securityID)
	tcfg.MinConfidence = 0.34
	pipeline, err := lighttrader.NewPipeline(symbol, securityID,
		lighttrader.NewVanillaCNN(), lighttrader.CalibrateNormalizer(calib), tcfg)
	if err != nil {
		log.Fatal(err)
	}

	tr := trader.New(trader.Config{
		Dial:               dial,
		UUID:               0xF00D,
		KeepAliveMillis:    250,
		BackoffMin:         25 * time.Millisecond,
		BackoffSeed:        *seed,
		CancelOnDisconnect: true,
		OnAck: func(ack orderentry.ExecAck) {
			if ack.Exec == exchange.ExecFilled || ack.Exec == exchange.ExecPartialFill {
				fmt.Printf("  fill: clOrdID %d %d @ %d\n", ack.ClOrdID, ack.Qty, ack.Price)
			}
		},
		Logf: log.Printf,
	}, pipeline, 8)

	go func() { _ = tr.Client().Run(ctx) }()
	go func() { _ = tr.ServeFeed(ctx, faultA) }()
	go func() { _ = tr.ServeFeed(ctx, faultB) }()

	readyCtx, readyCancel := context.WithTimeout(ctx, 5*time.Second)
	err = tr.Client().WaitReady(readyCtx)
	readyCancel()
	if err != nil {
		log.Fatalf("session never established: %v", err)
	}

	fmt.Printf("livefeed: trading %s for %v (feeds %s/%s, orders %s)\n",
		symbol, *runFor, feedA.LocalAddr(), feedB.LocalAddr(), srv.OrderAddr())
	if *drop > 0 || *dup > 0 || *reorder > 0 || *corrupt > 0 {
		fmt.Printf("livefeed: feed faults A[%v] B[%v]\n", pfA, pfB)
	}
	if *reset > 0 {
		fmt.Printf("livefeed: order-entry reset every %d bytes\n", *reset)
	}
	fmt.Println()

	<-ctx.Done()

	fs := tr.FeedStats()
	as := tr.ArbiterStats()
	cs := tr.Client().Stats()
	fmt.Printf("\nsession done: %d datagrams (%d bad), %d inferences, position %d\n",
		fs.Datagrams, fs.BadDatagrams, tr.Inferences(), pipeline.Trader().Position())
	fmt.Printf("  arbiter: %d delivered, %d duplicates suppressed, %d gaps, %d snapshot recoveries\n",
		as.Delivered, as.Duplicates, as.Gaps, as.Recoveries)
	fmt.Printf("  orders: %d routed, %d suppressed while degraded\n", fs.OrdersRouted, fs.Suppressed)
	fmt.Printf("  session: %d dials, %d established, %d reconnects, %d heartbeats, %d cancels-on-reconnect\n",
		cs.Dials, cs.Sessions, cs.Reconnects, cs.HeartbeatsSent, cs.CancelsOnReconnect)
	if fA, fB := faultA.Stats(), faultB.Stats(); fA.Dropped+fB.Dropped+fA.Corrupted+fB.Corrupted > 0 {
		fmt.Printf("  faults: A dropped %d dup %d reordered %d corrupted %d | B dropped %d dup %d reordered %d corrupted %d\n",
			fA.Dropped, fA.Duplicated, fA.Reordered, fA.Corrupted,
			fB.Dropped, fB.Duplicated, fB.Reordered, fB.Corrupted)
	}
}

// Livefeed: the full tick-to-trade loop over real sockets.
//
// It boots the wire-level exchange simulator in-process (UDP market data
// out, TCP iLink-style order entry in), subscribes to the feed, runs every
// datagram through the functional pipeline — SBE parse → book → feature
// map → DNN inference → risk checks — and sends the generated orders back
// to the exchange over TCP, printing fills as they come back.
//
//	go run ./examples/livefeed
//
// The same trader also works against a standalone `go run ./cmd/exchange`.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"time"

	"lighttrader"
	"lighttrader/internal/exchange"
	"lighttrader/internal/orderentry"
	"lighttrader/internal/venue"
)

const (
	securityID = 1
	symbol     = "ESU6"
	runFor     = 3 * time.Second
)

func main() {
	// Feed subscription socket first, so the exchange knows where to publish.
	feedConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer feedConn.Close()

	srv, err := venue.NewServer(venue.ServerConfig{
		OrderAddr:     "127.0.0.1:0",
		FeedAddr:      feedConn.LocalAddr().String(),
		SecurityID:    securityID,
		Symbol:        symbol,
		MidPrice:      450000,
		Depth:         100,
		NoiseInterval: 500 * time.Microsecond,
		NoiseSeed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), runFor)
	defer cancel()
	go func() { _ = srv.Run(ctx) }()

	// Order-entry session.
	orderConn, err := net.Dial("tcp", srv.OrderAddr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer orderConn.Close()

	// Calibrate the normaliser offline, as the paper does with historical
	// data, then build the pipeline.
	calib := lighttrader.GenerateTrace(lighttrader.DefaultTraceConfig(), 500)
	tcfg := lighttrader.DefaultTradingConfig(securityID)
	tcfg.MinConfidence = 0.34
	pipeline, err := lighttrader.NewPipeline(symbol, securityID,
		lighttrader.NewVanillaCNN(), lighttrader.CalibrateNormalizer(calib), tcfg)
	if err != nil {
		log.Fatal(err)
	}

	// Fill listener: decode ExecAck frames from the TCP session.
	go readAcks(orderConn, pipeline)

	fmt.Printf("livefeed: trading %s for %v (feed %s, orders %s)\n\n",
		symbol, runFor, feedConn.LocalAddr(), srv.OrderAddr())

	buf := make([]byte, 64<<10)
	var packets, orders int
	deadline := time.Now().Add(runFor)
	for time.Now().Before(deadline) {
		_ = feedConn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, _, err := feedConn.ReadFrom(buf)
		if err != nil {
			continue // idle feed tick
		}
		packets++
		reqs, err := pipeline.OnPacket(buf[:n])
		if err != nil {
			log.Printf("packet dropped: %v", err)
			continue
		}
		for _, req := range reqs {
			if _, err := orderConn.Write(orderentry.AppendRequest(nil, req)); err != nil {
				log.Fatalf("order send: %v", err)
			}
			orders++
		}
	}

	fmt.Printf("\nsession done: %d packets, %d inferences, %d orders sent, final position %d\n",
		packets, pipeline.Inferences(), orders, pipeline.Trader().Position())
}

// readAcks streams execution acks back into the trading engine.
func readAcks(conn net.Conn, pipeline *lighttrader.Pipeline) {
	buf := make([]byte, 0, 8192)
	tmp := make([]byte, 2048)
	for {
		n, err := conn.Read(tmp)
		if err != nil {
			return
		}
		buf = append(buf, tmp[:n]...)
		for {
			frame, consumed, err := orderentry.DecodeFrame(buf)
			if errors.Is(err, orderentry.ErrILinkShort) {
				break
			}
			if err != nil {
				return
			}
			buf = buf[consumed:]
			if frame.Ack == nil {
				continue
			}
			if frame.Ack.Exec == exchange.ExecFilled || frame.Ack.Exec == exchange.ExecPartialFill {
				fmt.Printf("  fill: clOrdID %d %d @ %d\n", frame.Ack.ClOrdID, frame.Ack.Qty, frame.Ack.Price)
			}
			// The trading engine recalls each order's side from its own
			// records; binary acks do not carry it.
			pipeline.OnExecReport(exchange.ExecReport{
				Exec: frame.Ack.Exec, ClOrdID: frame.Ack.ClOrdID,
				Price: frame.Ack.Price, Qty: frame.Ack.Qty,
			})
		}
	}
}

// Quickstart: one tick through the whole AI-enabled HFT pipeline.
//
// It generates a short burst of market data, calibrates the offload
// engine's Z-score normaliser, then feeds encoded market-data packets
// through the functional tick-to-trade path — SBE parse → local book →
// feature map → real DNN forward pass → risk-checked order generation —
// and prints what the system decided on the final ticks.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lighttrader"
)

func main() {
	cfg := lighttrader.DefaultTraceConfig()

	// 150 ticks: 100 to fill the model's input window, 50 live ones.
	trace := lighttrader.GenerateTrace(cfg, 150)
	norm := lighttrader.CalibrateNormalizer(trace[:100])

	tcfg := lighttrader.DefaultTradingConfig(cfg.SecurityID)
	tcfg.MinConfidence = 0.34 // act on any directional lean

	pipeline, err := lighttrader.NewPipeline(cfg.Symbol, cfg.SecurityID,
		lighttrader.NewVanillaCNN(), norm, tcfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("quickstart: %s, %d ticks\n\n", cfg.Symbol, len(trace))
	var orders int
	for i, tick := range trace {
		reqs, err := pipeline.OnPacket(tick.Packet)
		if err != nil {
			log.Fatalf("tick %d: %v", i, err)
		}
		for _, req := range reqs {
			orders++
			side := "BUY "
			if req.Side == 1 {
				side = "SELL"
			}
			fmt.Printf("tick %3d  %s %d @ %d (clOrdID %d)\n",
				i, side, req.Qty, req.Price, req.ClOrdID)
		}
	}

	snap := pipeline.Snapshot(0)
	fmt.Printf("\nprocessed %d ticks, ran %d inferences, generated %d orders\n",
		pipeline.Ticks(), pipeline.Inferences(), orders)
	fmt.Printf("final book: best bid %d x %d | best ask %d x %d\n",
		snap.Bids[0].Price, snap.Bids[0].Qty, snap.Asks[0].Price, snap.Asks[0].Qty)
	for _, d := range pipeline.Trader().Decisions()[:min(5, len(pipeline.Trader().Decisions()))] {
		fmt.Printf("decision: %-10s conf %.2f acted=%v %s\n",
			d.Direction, d.Confidence, d.Acted, d.Suppressed)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

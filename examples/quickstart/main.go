// Quickstart: one tick through the whole AI-enabled HFT pipeline, via the
// serving facade.
//
// It generates a short burst of market data, calibrates the offload
// engine's Z-score normaliser, subscribes one instrument on a
// MultiPipeline, and feeds encoded market-data packets through an inline
// (serial, synchronous) serving runtime — SBE parse → local book →
// feature map → real DNN forward pass → risk-checked order generation —
// printing what the system decided on the final ticks.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lighttrader"
)

func main() {
	cfg := lighttrader.DefaultTraceConfig()

	// 150 ticks: 100 to fill the model's input window, 50 live ones.
	trace := lighttrader.GenerateTrace(cfg, 150)
	norm := lighttrader.CalibrateNormalizer(trace[:100])

	tcfg := lighttrader.DefaultTradingConfig(cfg.SecurityID)
	tcfg.MinConfidence = 0.34 // act on any directional lean

	mp := lighttrader.NewMultiPipeline()
	if err := mp.Add(cfg.Symbol, cfg.SecurityID,
		lighttrader.NewVanillaCNN(), norm, tcfg); err != nil {
		log.Fatal(err)
	}

	// WithInline selects the degenerate serial configuration: Submit runs
	// the pipeline on this goroutine and orders reach the sink before it
	// returns. Drop WithInline (and add WithAccelerators) for the
	// concurrent runtime — see examples/serving.
	orders := lighttrader.NewOrderLog()
	srv, err := lighttrader.NewServer(mp,
		lighttrader.WithInline(),
		lighttrader.WithOrderSink(orders.Sink()))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("quickstart: %s, %d ticks\n\n", cfg.Symbol, len(trace))
	seen := 0
	for i, tick := range trace {
		if err := srv.Submit(tick.TimeNanos, tick.Packet); err != nil {
			log.Fatalf("tick %d: %v", i, err)
		}
		for _, req := range orders.Orders(cfg.SecurityID)[seen:] {
			seen++
			side := "BUY "
			if req.Side == 1 {
				side = "SELL"
			}
			fmt.Printf("tick %3d  %s %d @ %d (clOrdID %d)\n",
				i, side, req.Qty, req.Price, req.ClOrdID)
		}
	}

	snap, _ := srv.Snapshot(cfg.SecurityID, 0)
	fmt.Printf("\nprocessed %d ticks, ran %d inferences, generated %d orders\n",
		len(trace), srv.Inferences(cfg.SecurityID), orders.Total())
	fmt.Printf("final book: best bid %d x %d | best ask %d x %d\n",
		snap.Bids[0].Price, snap.Bids[0].Qty, snap.Asks[0].Price, snap.Asks[0].Qty)
	decisions := mp.Pipelines()[0].Trader().Decisions()
	for _, d := range decisions[:min(5, len(decisions))] {
		fmt.Printf("decision: %-10s conf %.2f acted=%v %s\n",
			d.Direction, d.Confidence, d.Acted, d.Suppressed)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Serving: the concurrent multi-symbol runtime end to end.
//
// Subscribes several instruments on one MultiPipeline, shards them across
// worker lanes (one logical lane per modelled accelerator), and replays a
// shared interleaved feed through the runtime with online Algorithm-1
// admission — each lane batches its backlog by the PPW rule before running
// the real DNN forward passes. The same feed is then replayed through the
// inline (serial) configuration to show the runtime's defining property:
// per-symbol order streams and books are identical at every lane count.
//
//	go run ./examples/serving
//	go run ./examples/serving -symbols 8 -lanes 4 -events 400
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"lighttrader"
)

func main() {
	symbols := flag.Int("symbols", 4, "subscribed instruments")
	lanes := flag.Int("lanes", 2, "worker lanes (modelled accelerators)")
	events := flag.Int("events", 300, "market-data events per instrument")
	flag.Parse()

	// One synthetic trace per instrument, interleaved into a shared feed.
	traces := make([][]lighttrader.Tick, *symbols)
	for i := range traces {
		cfg := lighttrader.DefaultTraceConfig()
		cfg.Symbol = fmt.Sprintf("SIM%d", i+1)
		cfg.SecurityID = int32(i + 1)
		cfg.Seed = int64(i + 1)
		traces[i] = lighttrader.GenerateTrace(cfg, *events)
	}
	var feed []lighttrader.Tick
	for j := 0; j < *events; j++ {
		for i := range traces {
			feed = append(feed, traces[i][j])
		}
	}

	// Fresh pipelines per run: identically-sized CNNs self-seed to
	// identical weights, so runs are comparable.
	build := func() *lighttrader.MultiPipeline {
		mp := lighttrader.NewMultiPipeline()
		for i := range traces {
			tcfg := lighttrader.DefaultTradingConfig(int32(i + 1))
			tcfg.MinConfidence = 0.2
			if err := mp.Add(fmt.Sprintf("SIM%d", i+1), int32(i+1),
				lighttrader.NewSizedCNN("serving", 8, 0),
				lighttrader.CalibrateNormalizer(traces[i]), tcfg); err != nil {
				log.Fatal(err)
			}
		}
		return mp
	}

	run := func(opts ...lighttrader.Option) (*lighttrader.Server, *lighttrader.OrderLog) {
		orders := lighttrader.NewOrderLog()
		srv, err := lighttrader.NewServer(build(),
			append(opts, lighttrader.WithOrderSink(orders.Sink()))...)
		if err != nil {
			log.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() { defer close(done); _ = srv.Run(ctx) }()
		for _, tick := range feed {
			if err := srv.Submit(tick.TimeNanos, tick.Packet); err != nil {
				log.Fatal(err)
			}
		}
		srv.Drain() // block until every lane queue is empty
		cancel()
		<-done
		return srv, orders
	}

	fmt.Printf("serving: %d symbols x %d events = %d packets\n\n",
		*symbols, *events, len(feed))

	start := time.Now()
	fleet, fleetOrders := run(
		lighttrader.WithAccelerators(*lanes),
		lighttrader.WithBackpressure(), // lossless: block Submit when a lane fills
		lighttrader.WithWorkloadScheduling(),
		lighttrader.WithDeadline(time.Hour))
	fleetWall := time.Since(start)

	start = time.Now()
	inline, inlineOrders := run(lighttrader.WithInline())
	inlineWall := time.Since(start)

	st := fleet.Stats()
	fmt.Printf("%d-lane runtime: served %d/%d, %d batches (mean %.2f), %d orders, %v\n",
		fleet.Lanes(), st.Served, st.Submitted, st.Batches, st.MeanBatch,
		st.Orders, fleetWall.Round(time.Millisecond))
	fmt.Printf("inline (serial): served %d/%d, %d orders, %v\n",
		inline.Stats().Served, inline.Stats().Submitted,
		inline.Stats().Orders, inlineWall.Round(time.Millisecond))

	// The parity check: same orders, same books, at any lane count.
	for i := range traces {
		id := int32(i + 1)
		a, b := inlineOrders.Orders(id), fleetOrders.Orders(id)
		if len(a) != len(b) {
			log.Fatalf("SIM%d: serial produced %d orders, %d-lane %d",
				i+1, len(a), fleet.Lanes(), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				log.Fatalf("SIM%d order %d diverged", i+1, j)
			}
		}
		sa, _ := inline.Snapshot(id, 0)
		sb, _ := fleet.Snapshot(id, 0)
		if sa.Bids != sb.Bids || sa.Asks != sb.Asks {
			log.Fatalf("SIM%d books diverged at quiesce", i+1)
		}
		fmt.Printf("SIM%d: %3d orders, %4d inferences — identical serial vs %d-lane\n",
			i+1, len(a), fleet.Inferences(id), fleet.Lanes())
	}
}

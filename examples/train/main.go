// Train: the offline stage of paper Fig. 3 — train a price-movement
// predictor on historical ticks, then deploy it in the tick-to-trade
// pipeline and compare PnL against an untrained model.
//
// It generates a tick trace, labels each step by the direction of the mean
// mid over the next 20 ticks (the DeepLOB smoothed-labelling scheme),
// trains a small CNN by SGD, evaluates held-out accuracy, and runs both
// the trained and an untrained model through a packet-level back-test.
//
//	go run ./examples/train
package main

import (
	"fmt"
	"log"

	"lighttrader"
)

const (
	horizon   = 20   // prediction horizon in ticks
	threshold = 2e-6 // relative mid move for a directional label (≈1 tick)
	epochs    = 3
)

func main() {
	cfg := lighttrader.DefaultTraceConfig()
	trace := lighttrader.GenerateTrace(cfg, 2200)
	norm := lighttrader.CalibrateNormalizer(trace)

	xs, ys := lighttrader.BuildDataset(trace, norm, horizon, threshold)
	split := len(xs) * 4 / 5
	fmt.Printf("dataset: %d examples (%d train / %d test), horizon %d ticks\n",
		len(xs), split, len(xs)-split, horizon)

	model := lighttrader.NewSizedCNN("trained-cnn", 8, 0)
	trainer, err := lighttrader.NewTrainer(model, 0.005)
	if err != nil {
		log.Fatal(err)
	}
	for e := 1; e <= epochs; e++ {
		loss, err := trainer.Epoch(xs[:split], ys[:split])
		if err != nil {
			log.Fatal(err)
		}
		acc, _ := lighttrader.Accuracy(model, xs[split:], ys[split:])
		fmt.Printf("epoch %d: train loss %.4f, held-out accuracy %.1f%%\n", e, loss, 100*acc)
	}

	// Deploy both models on a fresh out-of-sample trace.
	oos := cfg
	oos.Seed = 99
	testTrace := lighttrader.GenerateTrace(oos, 3000)
	for _, m := range []*lighttrader.Model{model, lighttrader.NewSizedCNN("untrained-cnn", 8, 0)} {
		tcfg := lighttrader.DefaultTradingConfig(cfg.SecurityID)
		tcfg.MinConfidence = 0.34
		p, err := lighttrader.NewPipeline(cfg.Symbol, cfg.SecurityID, m, norm, tcfg)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := lighttrader.FunctionalBacktest(testTrace, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%-14s %d inferences, %d orders, final position %+d, PnL %+.0f tick·lots\n",
			m.Name()+":", rep.Inferences, rep.Orders, rep.FinalPosition, rep.PnLTicks)
	}
	fmt.Println("\n(Synthetic order flow carries little exploitable signal, and the")
	fmt.Println("trained model learns exactly that: it stops trading noise, while the")
	fmt.Println("untrained model churns and bleeds. The deliverable is the working")
	fmt.Println("train → deploy → back-test loop of Fig. 3, not alpha.)")
}

// Scheduler: Algorithms 1 and 2 at work (paper Fig. 13 in miniature).
//
// Runs the same bursty trace against LightTrader with 8 accelerators under
// the limited power condition in all four scheduler configurations —
// baseline, workload scheduling (WS), DVFS scheduling (DS), and both — and
// shows the miss rate, the batch sizes the PPW metric picked, and the
// energy the DVFS policy saved.
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"log"
	"time"

	"lighttrader"
)

func main() {
	const ticks = 20000
	const accels = 8

	trace := lighttrader.GenerateTrace(lighttrader.DefaultTraceConfig(), ticks)
	model := lighttrader.NewTransLOB()

	configs := []struct {
		name string
		opts []lighttrader.Option
	}{
		{"baseline (no scheduling)", nil},
		{"WS  (Algorithm 1 batching)", []lighttrader.Option{lighttrader.WithWorkloadScheduling()}},
		{"DS  (Algorithm 2 power)", []lighttrader.Option{lighttrader.WithDVFSScheduling()}},
		{"WS+DS", []lighttrader.Option{
			lighttrader.WithWorkloadScheduling(), lighttrader.WithDVFSScheduling()}},
	}

	fmt.Printf("scheduler study: TransLOB, N=%d, limited power (%g W for accelerators)\n\n",
		accels, lighttrader.Limited.AccelBudgetWatts)
	fmt.Printf("%-28s %9s %10s %11s %10s\n", "configuration", "miss", "mean batch", "p99 t2t", "energy")
	for _, c := range configs {
		sys, err := lighttrader.New(model, append([]lighttrader.Option{
			lighttrader.WithAccelerators(accels),
			lighttrader.WithPowerBudget(lighttrader.Limited),
		}, c.opts...)...)
		if err != nil {
			log.Fatal(err)
		}
		m := lighttrader.Backtest(trace, 20*time.Millisecond, sys)
		fmt.Printf("%-28s %8.2f%% %10.2f %11v %9.1fJ\n",
			c.name, 100*m.MissRate, m.MeanBatch,
			time.Duration(m.P99LatencyNanos).Round(time.Microsecond), m.EnergyJoules)
	}
	fmt.Println("\nWS batches bursts through spare grid capacity; DS spends the idle")
	fmt.Println("accelerators' power budget on the busy ones. Together they cover both")
	fmt.Println("the small-N (throughput) and large-N (power) regimes of paper Fig. 13.")
}

// Signals: a terminal subscriber for the trade-signal gateway.
//
// Start the gateway side in one shell:
//
//	go run ./cmd/lighttrader -signal-listen 127.0.0.1:9000 -symbols 4
//
// then attach any number of subscribers:
//
//	go run ./examples/signals -addr 127.0.0.1:9000 -symbols SIM1,SIM2
//
// Each subscriber receives the conflated stream: always the newest signal
// per symbol, never a backlog. Seq gaps are the updates conflated away
// while this consumer (or its link) was slower than the publisher — the
// client counts them as GapDrops. Kill and restart the gateway to watch
// the reconnect ladder (capped exponential backoff) and the warm-start on
// resubscribe.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lighttrader"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9000", "signal gateway address")
	symbols := flag.String("symbols", "SIM1", "comma-separated symbols to subscribe")
	quiet := flag.Bool("quiet", false, "suppress per-signal lines (stats only)")
	flag.Parse()

	cli := lighttrader.NewSignalClient(lighttrader.SignalClientConfig{
		Addr:    *addr,
		Symbols: strings.Split(*symbols, ","),
		OnSignal: func(sig lighttrader.TradeSignal) {
			if *quiet {
				return
			}
			fmt.Printf("%-6s seq=%-6d action=%d conf=%.2f bid=%d ask=%d last=%d lag=%s\n",
				sig.Symbol, sig.Seq, sig.Action, sig.Confidence,
				sig.BidPrice, sig.AskPrice, sig.LastTrade,
				time.Duration(time.Now().UnixNano()-sig.PublishNanos).Round(time.Microsecond))
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = cli.Run(ctx) }()

	interrupted := make(chan os.Signal, 1)
	signal.Notify(interrupted, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			st := cli.Stats()
			fmt.Fprintf(os.Stderr,
				"-- dials %d, sessions %d, received %d, gap drops %d, heartbeats %d\n",
				st.Dials, st.Sessions, st.SignalsReceived, st.GapDrops, st.HeartbeatsSent)
		case <-interrupted:
			cancel()
			<-done
			st := cli.Stats()
			fmt.Printf("\nfinal: received %d signals, %d conflated away upstream\n",
				st.SignalsReceived, st.GapDrops)
			return
		}
	}
}

package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: lighttrader/internal/tensor
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkMatMul/64x64x64-1         	    9268	    128015 ns/op	       0 B/op	       0 allocs/op
BenchmarkModelInfer/DeepLOB-1      	     183	   6549731 ns/op	       0 B/op	       0 allocs/op
BenchmarkNoMem-1                   	     100	     50000 ns/op
PASS
ok  	lighttrader/internal/tensor	12.3s
`

func TestParse(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("header = %q %q %q", rep.Goos, rep.Goarch, rep.CPU)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(rep.Results))
	}
	r0 := rep.Results[0]
	if r0.Name != "BenchmarkMatMul/64x64x64-1" || r0.Iterations != 9268 ||
		r0.NsPerOp != 128015 || r0.BytesPerOp != 0 || r0.AllocsPerOp != 0 {
		t.Errorf("result 0 = %+v", r0)
	}
	// A line without -benchmem columns reports -1 (not measured), not 0.
	r2 := rep.Results[2]
	if r2.BytesPerOp != -1 || r2.AllocsPerOp != -1 {
		t.Errorf("no-benchmem result = %+v", r2)
	}
}

func TestParseIgnoresMalformed(t *testing.T) {
	in := "BenchmarkBroken-1 not numbers ns/op\nBenchmarkAlso bad\n"
	rep, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Errorf("got %d results from malformed input", len(rep.Results))
	}
}

// Command benchjson converts `go test -bench` output on stdin into a JSON
// report on stdout, so benchmark runs can be archived and diffed:
//
//	go test -bench=. -benchmem ./internal/... | benchjson > BENCH_kernels.json
//
// Lines that are not benchmark results (test output, pass/fail summaries,
// the cpu/goos preamble) are ignored, but the goos/goarch/cpu context lines
// are captured into the report header when present.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark result. Bytes/allocs are -1 when the run did not
// use -benchmem (so "0" remains distinguishable from "not measured").
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the full document written to stdout.
type Report struct {
	Goos    string  `json:"goos,omitempty"`
	Goarch  string  `json:"goarch,omitempty"`
	CPU     string  `json:"cpu,omitempty"`
	Results []Entry `json:"results"`
}

func main() {
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse scans benchmark output, collecting result lines and context headers.
func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if e, ok := parseResult(line); ok {
				rep.Results = append(rep.Results, e)
			}
		}
	}
	return rep, sc.Err()
}

// parseResult decodes one result line of the form
//
//	BenchmarkName-8  100  12345 ns/op  64 B/op  2 allocs/op
//
// returning ok=false for malformed or non-result Benchmark lines.
func parseResult(line string) (Entry, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Entry{}, false
	}
	iters, err1 := strconv.ParseInt(f[1], 10, 64)
	ns, err2 := strconv.ParseFloat(f[2], 64)
	if err1 != nil || err2 != nil {
		return Entry{}, false
	}
	e := Entry{Name: f[0], Iterations: iters, NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: -1}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseInt(f[i], 10, 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			e.BytesPerOp = v
		case "allocs/op":
			e.AllocsPerOp = v
		}
	}
	return e, true
}

// Command feedgen generates a synthetic CME-like tick trace — or renders a
// named market scenario (flash crash, halt/resume, ...) — and writes it to
// a binary trace file for exactly re-runnable back-tests.
//
// Usage:
//
//	feedgen -out ticks.lttr -ticks 100000 -seed 7
//	feedgen -out crash.lttr -scenario flash-crash -seed 3
//	feedgen -out ticks.lttr -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lighttrader"
	"lighttrader/internal/feed"
)

func main() {
	out := flag.String("out", "ticks.lttr", "output trace file")
	ticks := flag.Int("ticks", 100000, "number of ticks")
	seed := flag.Int64("seed", 1, "generator seed")
	mid := flag.Int64("mid", 450000, "initial mid price in ticks")
	scenarioName := flag.String("scenario", "", "render a named market scenario instead of the synthetic trace: "+strings.Join(lighttrader.ScenarioNames(), ", "))
	stats := flag.Bool("stats", false, "print arrival statistics")
	flag.Parse()

	var symbol string
	var trace []lighttrader.Tick
	if *scenarioName != "" {
		src, err := lighttrader.ScenarioByName(*scenarioName, *seed)
		if err != nil {
			fatal(err)
		}
		trace = src.Ticks()
		symbol = src.Script().Instruments[0].Symbol
		for _, sp := range src.PhaseSpans() {
			fmt.Printf("phase %-12s %8.3f s  %6d packets  %d withheld\n",
				sp.Name, float64(sp.EndNanos-sp.StartNanos)/1e9, sp.Ticks, sp.Withheld)
		}
	} else {
		cfg := lighttrader.DefaultTraceConfig()
		cfg.Seed = *seed
		cfg.MidPrice = *mid
		trace = lighttrader.GenerateTrace(cfg, *ticks)
		symbol = cfg.Symbol
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := lighttrader.WriteTrace(f, symbol, trace); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d ticks (%s) to %s\n", len(trace), symbol, *out)

	if *stats {
		s := feed.ComputeStats(trace)
		fmt.Printf("duration     %.1f s (mean %.0f ticks/s)\n", s.DurationSecs, s.MeanRate)
		fmt.Printf("gaps         min %d ns, p50 %d ns, p99 %d ns, max %d ns\n",
			s.MinGapNanos, s.P50GapNanos, s.P99GapNanos, s.MaxGapNanos)
		fmt.Printf("burstiness   CV² = %.1f (1 = Poisson)\n", s.CV2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "feedgen:", err)
	os.Exit(1)
}

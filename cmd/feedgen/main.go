// Command feedgen generates a synthetic CME-like tick trace and writes it
// to a binary trace file for exactly re-runnable back-tests.
//
// Usage:
//
//	feedgen -out ticks.lttr -ticks 100000 -seed 7
//	feedgen -out ticks.lttr -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"lighttrader"
	"lighttrader/internal/feed"
)

func main() {
	out := flag.String("out", "ticks.lttr", "output trace file")
	ticks := flag.Int("ticks", 100000, "number of ticks")
	seed := flag.Int64("seed", 1, "generator seed")
	mid := flag.Int64("mid", 450000, "initial mid price in ticks")
	stats := flag.Bool("stats", false, "print arrival statistics")
	flag.Parse()

	cfg := lighttrader.DefaultTraceConfig()
	cfg.Seed = *seed
	cfg.MidPrice = *mid
	trace := lighttrader.GenerateTrace(cfg, *ticks)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := lighttrader.WriteTrace(f, cfg.Symbol, trace); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d ticks (%s) to %s\n", len(trace), cfg.Symbol, *out)

	if *stats {
		s := feed.ComputeStats(trace)
		fmt.Printf("duration     %.1f s (mean %.0f ticks/s)\n", s.DurationSecs, s.MeanRate)
		fmt.Printf("gaps         min %d ns, p50 %d ns, p99 %d ns, max %d ns\n",
			s.MinGapNanos, s.P50GapNanos, s.P99GapNanos, s.MaxGapNanos)
		fmt.Printf("burstiness   CV² = %.1f (1 = Poisson)\n", s.CV2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "feedgen:", err)
	os.Exit(1)
}

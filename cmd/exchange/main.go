// Command exchange runs the wire-level exchange simulator: SBE market data
// out over UDP, iLink-style binary order entry in over TCP, with a
// background noise trader keeping the book alive. Pair it with
// examples/livefeed for a full tick-to-trade loop over real sockets.
//
// Usage:
//
//	exchange -orders 127.0.0.1:9440 -feed 127.0.0.1:9441 -noise 1ms
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"lighttrader/internal/venue"
)

func main() {
	orders := flag.String("orders", "127.0.0.1:9440", "TCP order-entry listen address")
	feedAddr := flag.String("feed", "127.0.0.1:9441", "UDP market-data destination")
	symbol := flag.String("symbol", "ESU6", "instrument symbol")
	secID := flag.Int("security", 1, "security id")
	mid := flag.Int64("mid", 450000, "initial mid price")
	noise := flag.Duration("noise", time.Millisecond, "mean background order-flow interval (0 disables)")
	seed := flag.Int64("seed", 1, "noise-trader seed")
	flag.Parse()

	srv, err := venue.NewServer(venue.ServerConfig{
		OrderAddr:     *orders,
		FeedAddr:      *feedAddr,
		SecurityID:    int32(*secID),
		Symbol:        *symbol,
		MidPrice:      *mid,
		Depth:         100,
		NoiseInterval: *noise,
		NoiseSeed:     *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "exchange:", err)
		os.Exit(1)
	}
	fmt.Printf("exchange up: orders %s, feed → %s, symbol %s\n", srv.OrderAddr(), *feedAddr, *symbol)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := srv.Run(ctx); err != nil && err != context.Canceled {
		fmt.Fprintln(os.Stderr, "exchange:", err)
		os.Exit(1)
	}
}

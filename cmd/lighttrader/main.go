// Command lighttrader runs a back-test of the LightTrader system (or a
// baseline) against a synthetic or recorded tick trace and prints the
// response-rate / latency metrics.
//
// Usage:
//
//	lighttrader -model deeplob -accels 4 -power sufficient -ws -ds
//	lighttrader -trace ticks.lttr -system gpu
//	lighttrader -ticks 50000 -tavail 20ms -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lighttrader"
)

func main() {
	model := flag.String("model", "deeplob", "DNN model: cnn, translob, deeplob")
	system := flag.String("system", "lighttrader", "system under test: lighttrader, gpu, fpga")
	accels := flag.Int("accels", 4, "number of AI accelerators (lighttrader only)")
	power := flag.String("power", "sufficient", "power condition: sufficient, limited")
	ws := flag.Bool("ws", false, "enable workload scheduling (Algorithm 1 batching)")
	ds := flag.Bool("ds", false, "enable DVFS scheduling (Algorithm 2)")
	ticks := flag.Int("ticks", 40000, "synthetic trace length")
	seed := flag.Int64("seed", 1, "synthetic trace seed")
	tracePath := flag.String("trace", "", "replay a recorded trace file instead of generating one")
	tavail := flag.Duration("tavail", 20*time.Millisecond, "available time per query (t_avail)")
	flag.Parse()

	m, err := pickModel(*model)
	if err != nil {
		fatal(err)
	}
	trace, err := loadTrace(*tracePath, *ticks, *seed)
	if err != nil {
		fatal(err)
	}

	var sys lighttrader.System
	switch strings.ToLower(*system) {
	case "lighttrader", "lt":
		pc := lighttrader.Sufficient
		if strings.EqualFold(*power, "limited") {
			pc = lighttrader.Limited
		}
		sys, err = lighttrader.NewLightTrader(m, *accels, pc, lighttrader.SchedulerOptions{
			WorkloadScheduling: *ws, DVFSScheduling: *ds,
		})
		if err != nil {
			fatal(err)
		}
	case "gpu":
		sys = lighttrader.NewGPUBaseline(m)
	case "fpga":
		sys = lighttrader.NewFPGABaseline(m)
	default:
		fatal(fmt.Errorf("unknown system %q", *system))
	}

	start := time.Now()
	metrics := lighttrader.Backtest(trace, *tavail, sys)
	elapsed := time.Since(start)

	fmt.Printf("system          %s\n", sys.Name())
	fmt.Printf("trace           %d ticks over %.1f s (t_avail %v)\n",
		metrics.Total, traceSpanSecs(trace), *tavail)
	fmt.Printf("response rate   %.2f%%   (responded %d, deferred %d, late %d)\n",
		100*metrics.ResponseRate, metrics.Responded, metrics.Dropped, metrics.Late)
	fmt.Printf("miss rate       %.2f%%\n", 100*metrics.MissRate)
	fmt.Printf("tick-to-trade   mean %s  p50 %s  p99 %s  max %s\n",
		dur(metrics.MeanLatencyNanos), dur(metrics.P50LatencyNanos),
		dur(metrics.P99LatencyNanos), dur(metrics.MaxLatencyNanos))
	fmt.Printf("mean batch      %.2f\n", metrics.MeanBatch)
	if metrics.EnergyJoules > 0 {
		fmt.Printf("energy          %.1f J (avg %.1f W)\n", metrics.EnergyJoules, metrics.AvgPowerWatts)
	}
	fmt.Printf("simulated in    %v\n", elapsed.Round(time.Millisecond))
}

func pickModel(name string) (*lighttrader.Model, error) {
	switch strings.ToLower(name) {
	case "cnn", "vanillacnn":
		return lighttrader.NewVanillaCNN(), nil
	case "translob":
		return lighttrader.NewTransLOB(), nil
	case "deeplob":
		return lighttrader.NewDeepLOB(), nil
	default:
		return nil, fmt.Errorf("unknown model %q (want cnn, translob, deeplob)", name)
	}
}

func loadTrace(path string, ticks int, seed int64) ([]lighttrader.Tick, error) {
	if path == "" {
		cfg := lighttrader.DefaultTraceConfig()
		cfg.Seed = seed
		return lighttrader.GenerateTrace(cfg, ticks), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	_, trace, err := lighttrader.ReadTrace(f)
	return trace, err
}

func traceSpanSecs(trace []lighttrader.Tick) float64 {
	if len(trace) < 2 {
		return 0
	}
	return float64(trace[len(trace)-1].TimeNanos-trace[0].TimeNanos) / 1e9
}

func dur(ns int64) string { return time.Duration(ns).Round(100 * time.Nanosecond).String() }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lighttrader:", err)
	os.Exit(1)
}

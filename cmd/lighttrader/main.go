// Command lighttrader runs a back-test of the LightTrader system (or a
// baseline) against a synthetic or recorded tick trace and prints the
// response-rate / latency metrics. With -serve it instead drives the
// concurrent multi-symbol serving runtime (online Algorithm-1 batching
// across worker lanes) over a shared feed and reports the modelled
// throughput scaling.
//
// Usage:
//
//	lighttrader -model deeplob -accels 4 -power sufficient -ws -ds
//	lighttrader -trace ticks.lttr -system gpu
//	lighttrader -ticks 50000 -tavail 20ms -seed 7
//	lighttrader -scenario flash-crash -seed 3 -power limited -ws -ds
//	lighttrader -serve -symbols 8 -accels 8
//	lighttrader -signal-listen :9000 -symbols 4
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lighttrader"
	"lighttrader/internal/prof"
)

func main() {
	model := flag.String("model", "deeplob", "DNN model: cnn, translob, deeplob")
	system := flag.String("system", "lighttrader", "system under test: lighttrader, gpu, fpga")
	accels := flag.Int("accels", 4, "number of AI accelerators (worker lanes in -serve mode)")
	power := flag.String("power", "sufficient", "power condition: sufficient, limited")
	ws := flag.Bool("ws", false, "enable workload scheduling (Algorithm 1 batching)")
	ds := flag.Bool("ds", false, "enable DVFS scheduling (Algorithm 2)")
	scheduler := flag.String("scheduler", "", "scheduling strategy: "+strings.Join(lighttrader.SchedulerNames(), ", ")+" (default ppw; implies -ws)")
	ticks := flag.Int("ticks", 40000, "synthetic trace length (total packets in -serve mode)")
	seed := flag.Int64("seed", 1, "synthetic trace seed")
	tracePath := flag.String("trace", "", "replay a recorded trace file instead of generating one")
	scenarioName := flag.String("scenario", "", "replay a named market scenario instead of the synthetic trace: "+strings.Join(lighttrader.ScenarioNames(), ", "))
	tavail := flag.Duration("tavail", 20*time.Millisecond, "available time per query (t_avail)")
	serveMode := flag.Bool("serve", false, "drive the concurrent serving runtime instead of a back-test")
	symbols := flag.Int("symbols", 8, "subscribed instruments (-serve mode)")
	signalListen := flag.String("signal-listen", "", "serve the live trade-signal stream on this TCP address (paced synthetic feed; Ctrl-C to stop)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	pc := lighttrader.Sufficient
	if strings.EqualFold(*power, "limited") {
		pc = lighttrader.Limited
	}

	var schedOpt []lighttrader.Option
	if *scheduler != "" {
		factory, err := lighttrader.SchedulerByName(*scheduler)
		if err != nil {
			fatal(err)
		}
		schedOpt = append(schedOpt, lighttrader.WithScheduler(factory))
	}

	if *signalListen != "" {
		runSignalListen(*signalListen, *symbols, *accels, *ticks, *seed)
		return
	}

	if *serveMode {
		runServe(*symbols, *accels, *ticks, *seed, pc, *ds, schedOpt)
		return
	}

	m, err := pickModel(*model)
	if err != nil {
		fatal(err)
	}
	var trace []lighttrader.Tick
	if *scenarioName != "" {
		if *tracePath != "" {
			fatal(fmt.Errorf("-scenario and -trace are mutually exclusive"))
		}
		src, err := lighttrader.ScenarioByName(*scenarioName, *seed)
		if err != nil {
			fatal(err)
		}
		trace = src.Ticks()
	} else {
		trace, err = loadTrace(*tracePath, *ticks, *seed)
		if err != nil {
			fatal(err)
		}
	}

	var sys lighttrader.System
	switch strings.ToLower(*system) {
	case "lighttrader", "lt":
		opts := []lighttrader.Option{
			lighttrader.WithAccelerators(*accels),
			lighttrader.WithPowerBudget(pc),
		}
		if *ws {
			opts = append(opts, lighttrader.WithWorkloadScheduling())
		}
		if *ds {
			opts = append(opts, lighttrader.WithDVFSScheduling())
		}
		opts = append(opts, schedOpt...)
		sys, err = lighttrader.New(m, opts...)
		if err != nil {
			fatal(err)
		}
	case "gpu":
		sys = lighttrader.NewGPUBaseline(m)
	case "fpga":
		sys = lighttrader.NewFPGABaseline(m)
	default:
		fatal(fmt.Errorf("unknown system %q", *system))
	}

	start := time.Now()
	metrics := lighttrader.Backtest(trace, *tavail, sys)
	elapsed := time.Since(start)

	fmt.Printf("system          %s\n", sys.Name())
	fmt.Printf("trace           %d ticks over %.1f s (t_avail %v)\n",
		metrics.Total, traceSpanSecs(trace), *tavail)
	fmt.Printf("response rate   %.2f%%   (responded %d, deferred %d, late %d)\n",
		100*metrics.ResponseRate, metrics.Responded, metrics.Dropped, metrics.Late)
	fmt.Printf("miss rate       %.2f%%\n", 100*metrics.MissRate)
	fmt.Printf("tick-to-trade   mean %s  p50 %s  p99 %s  max %s\n",
		dur(metrics.MeanLatencyNanos), dur(metrics.P50LatencyNanos),
		dur(metrics.P99LatencyNanos), dur(metrics.MaxLatencyNanos))
	fmt.Printf("mean batch      %.2f\n", metrics.MeanBatch)
	if metrics.EnergyJoules > 0 {
		fmt.Printf("energy          %.1f J (avg %.1f W)\n", metrics.EnergyJoules, metrics.AvgPowerWatts)
	}
	fmt.Printf("simulated in    %v\n", elapsed.Round(time.Millisecond))
}

// runServe replays one shared multi-instrument feed through the serving
// runtime twice — one lane, then the requested lane count — and compares
// the modelled makespan (Σ issued batch latency per lane, max over lanes).
// Queues are pre-filled before the lanes start so the Algorithm-1 batch
// decisions, and therefore the modelled times, are deterministic.
func runServe(symbols, lanes, total int, seed int64, pc lighttrader.PowerCondition, ds bool, schedOpt []lighttrader.Option) {
	if symbols < 1 || lanes < 1 {
		fatal(fmt.Errorf("-serve needs -symbols >= 1 and -accels >= 1"))
	}
	events := total / symbols
	if events < 300 {
		events = 300 // enough to fill the model window and still measure
	}

	traces := make([][]lighttrader.Tick, symbols)
	for i := range traces {
		cfg := lighttrader.DefaultTraceConfig()
		cfg.Symbol = fmt.Sprintf("SIM%d", i+1)
		cfg.SecurityID = int32(i + 1)
		cfg.Seed = seed + int64(i)
		traces[i] = lighttrader.GenerateTrace(cfg, events)
	}
	var packets [][]byte
	var arrivals []int64
	for j := 0; j < events; j++ {
		for i := range traces {
			packets = append(packets, traces[i][j].Packet)
			arrivals = append(arrivals, traces[i][j].TimeNanos)
		}
	}
	// Fresh pipelines per run: NewSizedCNN self-seeds from its shape, so
	// every run starts from identical weights and identical empty books.
	build := func() *lighttrader.MultiPipeline {
		mp := lighttrader.NewMultiPipeline()
		for i := range traces {
			tcfg := lighttrader.DefaultTradingConfig(int32(i + 1))
			tcfg.MinConfidence = 0.2
			if err := mp.Add(fmt.Sprintf("SIM%d", i+1), int32(i+1),
				lighttrader.NewSizedCNN("serve", 8, 0),
				lighttrader.CalibrateNormalizer(traces[i]), tcfg); err != nil {
				fatal(err)
			}
		}
		return mp
	}

	run := func(n int) (lighttrader.ServeStats, int64, time.Duration, int) {
		log := lighttrader.NewOrderLog()
		opts := []lighttrader.Option{
			lighttrader.WithAccelerators(n),
			lighttrader.WithPowerBudget(pc),
			lighttrader.WithWorkloadScheduling(),
			lighttrader.WithMaxQueue(len(packets) + 1),
			lighttrader.WithOrderSink(log.Sink()),
		}
		if ds {
			opts = append(opts, lighttrader.WithDVFSScheduling())
		}
		opts = append(opts, schedOpt...)
		srv, err := lighttrader.NewServer(build(), opts...)
		if err != nil {
			fatal(err)
		}
		for i, buf := range packets {
			if err := srv.Submit(arrivals[i], buf); err != nil {
				fatal(err)
			}
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		start := time.Now()
		go func() { defer close(done); _ = srv.Run(ctx) }()
		srv.Drain()
		wall := time.Since(start)
		cancel()
		<-done
		var makespan int64
		for _, busy := range srv.ModelledBusyNanos() {
			if busy > makespan {
				makespan = busy
			}
		}
		return srv.Stats(), makespan, wall, log.Total()
	}

	sched := "WS"
	if ds {
		sched += "+DS"
	}
	fmt.Printf("serving: %d symbols x %d events = %d packets, sized CNN (8 ch), %s, %s power\n\n",
		symbols, events, len(packets), sched, pcName(pc))
	fmt.Printf("%5s %15s %6s %8s %11s %7s %18s %10s\n",
		"lanes", "served", "drops", "batches", "mean batch", "orders", "modelled makespan", "wall")
	var base int64
	for _, n := range laneSweep(lanes) {
		st, makespan, wall, orders := run(n)
		fmt.Printf("%5d %8d/%-6d %6d %8d %11.2f %7d %18v %10v\n",
			n, st.Served, st.Submitted, st.Dropped(), st.Batches, st.MeanBatch,
			orders, time.Duration(makespan).Round(time.Microsecond),
			wall.Round(time.Millisecond))
		if n == 1 {
			base = makespan
		} else if base > 0 && makespan > 0 {
			fmt.Printf("      modelled speedup at %d lanes: %.2fx\n",
				n, float64(base)/float64(makespan))
		}
	}
	fmt.Println("\nModelled makespan is the accelerator-time model (wall clock depends on")
	fmt.Println("host cores); single-lane output is byte-identical to the serial path.")
}

// runSignalListen is the live signal-distribution mode: the serving
// runtime replays a paced synthetic multi-instrument feed with the signal
// gateway attached, while the gateway serves the conflated trade-signal
// stream to TCP subscribers on addr (see examples/signals for a client).
// After the replay the gateway keeps serving — late joiners warm-start on
// each symbol's latest value — until interrupted.
func runSignalListen(addr string, symbols, lanes, total int, seed int64) {
	if symbols < 1 || lanes < 1 {
		fatal(fmt.Errorf("-signal-listen needs -symbols >= 1 and -accels >= 1"))
	}
	events := total / symbols
	if events < 300 {
		events = 300
	}
	traces := make([][]lighttrader.Tick, symbols)
	for i := range traces {
		cfg := lighttrader.DefaultTraceConfig()
		cfg.Symbol = fmt.Sprintf("SIM%d", i+1)
		cfg.SecurityID = int32(i + 1)
		cfg.Seed = seed + int64(i)
		traces[i] = lighttrader.GenerateTrace(cfg, events)
	}
	mp := lighttrader.NewMultiPipeline()
	for i := range traces {
		tcfg := lighttrader.DefaultTradingConfig(int32(i + 1))
		tcfg.MinConfidence = 0.2
		if err := mp.Add(fmt.Sprintf("SIM%d", i+1), int32(i+1),
			lighttrader.NewSizedCNN("serve", 8, 0),
			lighttrader.CalibrateNormalizer(traces[i]), tcfg); err != nil {
			fatal(err)
		}
	}

	gw, err := lighttrader.NewSignalGateway(lighttrader.SignalGatewayConfig{})
	if err != nil {
		fatal(err)
	}
	defer gw.Close()
	log := lighttrader.NewOrderLog()
	srv, err := lighttrader.NewServer(mp,
		lighttrader.WithAccelerators(lanes),
		lighttrader.WithWorkloadScheduling(),
		lighttrader.WithMaxQueue(symbols*events+1),
		lighttrader.WithOrderSink(log.Sink()),
		lighttrader.WithSignalGateway(gw),
	)
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan struct{})
	runDone := make(chan struct{})
	go func() { defer close(serveDone); _ = gw.Serve(ctx, ln) }()
	go func() { defer close(runDone); _ = srv.Run(ctx) }()

	interrupted := make(chan os.Signal, 1)
	signal.Notify(interrupted, os.Interrupt, syscall.SIGTERM)

	fmt.Printf("signal gateway listening on %s (%d symbols, %d lanes, %d shards)\n",
		ln.Addr(), symbols, lanes, gw.Shards())
	fmt.Printf("replaying %d packets paced at ~5k/s; Ctrl-C to stop\n", symbols*events)

	pace := time.NewTicker(200 * time.Microsecond)
	defer pace.Stop()
replay:
	for j := 0; j < events; j++ {
		for i := range traces {
			select {
			case <-interrupted:
				break replay
			case <-pace.C:
			}
			if err := srv.Submit(traces[i][j].TimeNanos, traces[i][j].Packet); err != nil {
				fatal(err)
			}
		}
	}
	srv.Drain()
	gw.Drain()

	st := srv.Stats()
	gs := gw.Stats()
	fmt.Printf("\nreplay done: served %d/%d, orders %d\n", st.Served, st.Submitted, log.Total())
	fmt.Printf("signals: published %d, delivered %d, conflation drops %d\n",
		gs.Published, gs.Delivered, gs.ConflationDrops)
	fmt.Printf("conns: open %d, total %d, dropped %d; subscribers %d\n",
		gs.ConnsOpen, gs.ConnsTotal, gs.ConnsDropped, gs.Subscribers)
	fmt.Println("gateway still serving (late joiners warm-start); Ctrl-C to exit")
	<-interrupted

	cancel()
	gw.Close()
	<-serveDone
	<-runDone
}

func laneSweep(lanes int) []int {
	if lanes == 1 {
		return []int{1}
	}
	return []int{1, lanes}
}

func pcName(pc lighttrader.PowerCondition) string {
	if pc == lighttrader.Limited {
		return "limited"
	}
	return "sufficient"
}

func pickModel(name string) (*lighttrader.Model, error) {
	switch strings.ToLower(name) {
	case "cnn", "vanillacnn":
		return lighttrader.NewVanillaCNN(), nil
	case "translob":
		return lighttrader.NewTransLOB(), nil
	case "deeplob":
		return lighttrader.NewDeepLOB(), nil
	default:
		return nil, fmt.Errorf("unknown model %q (want cnn, translob, deeplob)", name)
	}
}

func loadTrace(path string, ticks int, seed int64) ([]lighttrader.Tick, error) {
	if path == "" {
		cfg := lighttrader.DefaultTraceConfig()
		cfg.Seed = seed
		return lighttrader.GenerateTrace(cfg, ticks), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	_, trace, err := lighttrader.ReadTrace(f)
	return trace, err
}

func traceSpanSecs(trace []lighttrader.Tick) float64 {
	if len(trace) < 2 {
		return 0
	}
	return float64(trace[len(trace)-1].TimeNanos-trace[0].TimeNanos) / 1e9
}

func dur(ns int64) string { return time.Duration(ns).Round(100 * time.Nanosecond).String() }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lighttrader:", err)
	os.Exit(1)
}

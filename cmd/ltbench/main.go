// Command ltbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ltbench                      # run everything
//	ltbench -exp fig12           # one experiment: tableI…tableIII, fig8…fig13, ablations
//	ltbench -ticks 40000         # trace length
//	ltbench -tavail 20ms         # per-query available time
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lighttrader/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, tableI, tableII, tableIII, fig8, fig9, fig11, fig12, fig13")
	ticks := flag.Int("ticks", 40000, "trace length in ticks")
	tavail := flag.Duration("tavail", 20*time.Millisecond, "available time per query (t_avail)")
	seed := flag.Int64("seed", 1, "trace seed")
	flag.Parse()

	tc := bench.DefaultTraffic()
	tc.Ticks = *ticks
	tc.TAvailNanos = tavail.Nanoseconds()
	tc.Seed = *seed

	run := func(name string, fn func() string) {
		if *exp != "all" && !strings.EqualFold(*exp, name) {
			return
		}
		start := time.Now()
		out := fn()
		fmt.Println(out)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("tableI", bench.RenderTableI)
	run("tableII", bench.RenderTableII)
	run("tableIII", bench.RenderTableIII)
	run("fig8", func() string { return bench.RenderFig8(bench.Fig8(tc)) })
	run("fig9", func() string { return bench.RenderFig9(bench.Fig9()) })
	run("fig11", func() string { return bench.RenderFig11(bench.Fig11(tc)) })
	run("fig12", func() string { return bench.RenderFig12(bench.Fig12(tc)) })
	run("fig13", func() string { return bench.RenderFig13(bench.Fig13(tc)) })
	run("ablations", func() string {
		return bench.RenderAblationPrecision(bench.AblationPrecision()) + "\n" +
			bench.RenderAblationPolicy(bench.AblationPolicy(tc)) + "\n" +
			bench.RenderAblationSwitchDelay(bench.AblationSwitchDelay(tc)) + "\n" +
			bench.RenderAblationBurstiness(bench.AblationBurstiness(tc))
	})

	if *exp != "all" {
		switch strings.ToLower(*exp) {
		case "tablei", "tableii", "tableiii", "fig8", "fig9", "fig11", "fig12", "fig13", "ablations":
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
	}
}

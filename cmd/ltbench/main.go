// Command ltbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ltbench                      # run everything, serially
//	ltbench -parallel 4          # fan experiments across 4 workers (0 = GOMAXPROCS)
//	ltbench -exp fig12           # one experiment: tableI…tableIII, fig8…fig13, ablations
//	ltbench -ticks 40000         # trace length
//	ltbench -tavail 20ms         # per-query available time
//	ltbench -trace out.jsonl     # instrumented run: event log + miss attribution
//	ltbench -scheduler fcfs      # scheduling strategy for the -trace run
//	ltbench -schedjson out.json  # archive the sched-matrix rows as JSON
//	ltbench -fanoutjson out.json # archive the signal fan-out rows as JSON
//	ltbench -powerjson out.json  # archive the limited-power recovery sweep as JSON
//	ltbench -scenariojson out.json # archive the scenario chaos matrix as JSON
//	ltbench -frontierjson out.json # archive the inference-compute frontier as JSON
//	ltbench -workers 4           # GEMM worker-pool width (0 = GOMAXPROCS)
//	ltbench -blocksize 256       # GEMM k-panel cache block size
//	ltbench -cpuprofile cpu.out  # write a CPU profile (go tool pprof)
//	ltbench -memprofile mem.out  # write a heap profile at exit
//
// Output is identical for any -parallel value: experiments are independent
// and each one runs serially, so only the wall time changes. The -workers
// and -blocksize knobs tune the tensor compute backend (see DESIGN.md,
// "Compute backend"); they change wall time only, never results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lighttrader/internal/bench"
	"lighttrader/internal/prof"
	"lighttrader/internal/sched"
	"lighttrader/internal/tensor"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, tableI, tableII, tableIII, fig8, fig9, fig11, fig12, fig13, ablations, or one ablation-* name")
	ticks := flag.Int("ticks", 40000, "trace length in ticks")
	tavail := flag.Duration("tavail", 20*time.Millisecond, "available time per query (t_avail)")
	seed := flag.Int64("seed", 1, "trace seed")
	parallel := flag.Int("parallel", 1, "experiment worker count (0 = GOMAXPROCS)")
	trace := flag.String("trace", "", "write an instrumented-run event log (JSONL) to this path")
	scheduler := flag.String("scheduler", "", "scheduling strategy for the -trace run: "+strings.Join(sched.SchedulerNames(), ", ")+" (default ppw)")
	schedjson := flag.String("schedjson", "", "run the sched-matrix experiment and write its rows as JSON to this path")
	fanoutjson := flag.String("fanoutjson", "", "run the signal fan-out experiment and write its rows as JSON to this path")
	powerjson := flag.String("powerjson", "", "run the limited-power recovery sweep and write its rows as JSON to this path")
	scenariojson := flag.String("scenariojson", "", "run the scenario chaos matrix and write its rows as JSON to this path")
	frontierjson := flag.String("frontierjson", "", "run the inference-compute frontier experiment and write its rows as JSON to this path")
	workers := flag.Int("workers", 0, "GEMM worker-pool width for large multiplies (0 = GOMAXPROCS)")
	blocksize := flag.Int("blocksize", tensor.BlockSize(), "GEMM k-panel cache block size (min 8)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ltbench: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	tensor.SetWorkers(*workers)
	tensor.SetBlockSize(*blocksize)

	tc := bench.DefaultTraffic()
	tc.Ticks = *ticks
	tc.TAvailNanos = tavail.Nanoseconds()
	tc.Seed = *seed

	start := time.Now()

	if *trace != "" {
		if err := writeTrace(tc, *trace, *scheduler); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
	}

	if *schedjson != "" {
		if err := writeSchedJSON(tc, *schedjson); err != nil {
			fmt.Fprintf(os.Stderr, "schedjson: %v\n", err)
			os.Exit(1)
		}
		if *trace == "" && *fanoutjson == "" && *powerjson == "" && *scenariojson == "" && *frontierjson == "" && strings.EqualFold(*exp, "all") {
			return // archive run: don't also regenerate the whole suite
		}
	}

	if *fanoutjson != "" {
		if err := writeFanoutJSON(*fanoutjson); err != nil {
			fmt.Fprintf(os.Stderr, "fanoutjson: %v\n", err)
			os.Exit(1)
		}
		if *trace == "" && *powerjson == "" && *scenariojson == "" && *frontierjson == "" && strings.EqualFold(*exp, "all") {
			return // archive run: don't also regenerate the whole suite
		}
	}

	if *powerjson != "" {
		if err := writePowerJSON(*powerjson); err != nil {
			fmt.Fprintf(os.Stderr, "powerjson: %v\n", err)
			os.Exit(1)
		}
		if *trace == "" && *scenariojson == "" && *frontierjson == "" && strings.EqualFold(*exp, "all") {
			return // archive run: don't also regenerate the whole suite
		}
	}

	if *scenariojson != "" {
		if err := writeScenarioJSON(*scenariojson, *parallel); err != nil {
			fmt.Fprintf(os.Stderr, "scenariojson: %v\n", err)
			os.Exit(1)
		}
		if *trace == "" && *frontierjson == "" && strings.EqualFold(*exp, "all") {
			return // archive run: don't also regenerate the whole suite
		}
	}

	if *frontierjson != "" {
		if err := writeFrontierJSON(*frontierjson); err != nil {
			fmt.Fprintf(os.Stderr, "frontierjson: %v\n", err)
			os.Exit(1)
		}
		if *trace == "" && strings.EqualFold(*exp, "all") {
			return // archive run: don't also regenerate the whole suite
		}
	}

	selected := selectExperiments(bench.Experiments(tc), *exp)
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if *parallel != 1 && len(selected) > 1 && needsTraffic(selected) {
		// Warm the shared query cache once so concurrent workers don't
		// each generate the same trace on first access.
		tc.Queries()
	}

	results := bench.RunAll(selected, *parallel)
	for _, r := range results {
		fmt.Println(r.Output)
		fmt.Printf("[%s completed in %v]\n\n", r.Name, r.Wall.Round(time.Millisecond))
	}

	var aggregate time.Duration
	fmt.Printf("Per-experiment wall time (parallel=%d):\n", *parallel)
	for _, r := range results {
		fmt.Printf("  %-22s %v\n", r.Name, r.Wall.Round(time.Millisecond))
		aggregate += r.Wall
	}
	fmt.Printf("  %-22s %v (sum of experiments)\n", "aggregate", aggregate.Round(time.Millisecond))
	fmt.Printf("  %-22s %v\n", "total wall", time.Since(start).Round(time.Millisecond))
}

// selectExperiments filters the suite by the -exp flag; "ablations" keeps
// the historical behaviour of running every ablation-* experiment.
func selectExperiments(all []bench.Experiment, exp string) []bench.Experiment {
	if strings.EqualFold(exp, "all") {
		return all
	}
	var sel []bench.Experiment
	for _, e := range all {
		if strings.EqualFold(e.Name, exp) ||
			(strings.EqualFold(exp, "ablations") && strings.HasPrefix(e.Name, "ablation-")) {
			sel = append(sel, e)
		}
	}
	return sel
}

// needsTraffic reports whether any selected experiment replays the tick
// trace (the tables and fig9 are traffic-independent).
func needsTraffic(sel []bench.Experiment) bool {
	for _, e := range sel {
		switch e.Name {
		case "tableI", "tableII", "tableIII", "fig9", "ablation-precision":
		default:
			return true
		}
	}
	return false
}

// writeTrace runs the canonical instrumented configuration and writes its
// event log, printing the per-cause miss attribution summary.
func writeTrace(tc bench.TrafficConfig, path, scheduler string) error {
	start := time.Now()
	var factory sched.Factory
	if scheduler != "" {
		var err error
		if factory, err = sched.FactoryByName(scheduler); err != nil {
			return err
		}
	}
	m, tr := bench.TraceRunWith(tc, factory)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.WriteJSONL(f); err != nil {
		return err
	}
	fmt.Printf("Instrumented run: %s\n", m.System)
	fmt.Printf("  total %d, responded %d (%.1f%%), dropped %d, late %d\n",
		m.Total, m.Responded, 100*m.ResponseRate, m.Dropped, m.Late)
	fmt.Print(indent(tr.Summary()))
	fmt.Printf("  event log written to %s\n", path)
	fmt.Printf("[trace completed in %v]\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// writeFanoutJSON runs the signal fan-out experiment and archives its rows.
func writeFanoutJSON(path string) error {
	start := time.Now()
	cfg := bench.FanoutConfig{}
	rows := bench.RunFanout(cfg)
	data, err := bench.FanoutJSON(cfg, rows)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Print(bench.RenderFanout(rows))
	fmt.Printf("fan-out rows written to %s\n", path)
	fmt.Printf("[fanout completed in %v]\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// writeSchedJSON runs the scheduling-policy matrix and archives its rows.
func writeSchedJSON(tc bench.TrafficConfig, path string) error {
	start := time.Now()
	rows := bench.SchedMatrix(tc)
	data, err := bench.SchedMatrixJSON(tc, rows)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Print(bench.RenderSchedMatrix(rows))
	fmt.Printf("sched matrix written to %s\n", path)
	fmt.Printf("[sched-matrix completed in %v]\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// writePowerJSON runs the limited-power recovery sweep and archives its
// rows. The sweep replays its own calibrated traffic (bench.PowerTraffic):
// the tight-horizon, high-rate regime where power infeasibility actually
// fires, independent of the -ticks/-tavail figure knobs.
func writePowerJSON(path string) error {
	start := time.Now()
	tc := bench.PowerTraffic()
	rows := bench.PowerSweep(tc)
	data, err := bench.PowerSweepJSON(tc, rows)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Print(bench.RenderPowerSweep(rows))
	fmt.Printf("power sweep written to %s\n", path)
	fmt.Printf("[power-sweep completed in %v]\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// writeScenarioJSON runs the scenario × configuration chaos matrix and
// archives its rows. The matrix replays its own registry of seeded byte
// streams at the scenario horizon budget, independent of -ticks/-tavail.
func writeScenarioJSON(path string, parallel int) error {
	start := time.Now()
	rows := bench.ScenarioMatrixWorkers(bench.ScenarioTAvailNanos, parallel)
	data, err := bench.ScenarioMatrixJSON(bench.ScenarioTAvailNanos, rows)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Print(bench.RenderScenarioMatrix(rows))
	fmt.Printf("scenario matrix written to %s\n", path)
	fmt.Printf("[scenario-matrix completed in %v]\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// writeFrontierJSON runs the inference-compute frontier experiment and
// archives its report: zoo variants trained on teacher-labelled synthetic
// LOB windows and priced on the CGRA latency tables, plus the burst-
// scenario recovery sweep with the degrade ladder on and off. Trains the
// zoo at its own archived scale, independent of -ticks/-tavail.
func writeFrontierJSON(path string) error {
	start := time.Now()
	rep := bench.FrontierSweep(bench.DefaultFrontierConfig())
	data, err := bench.FrontierJSON(rep)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Print(bench.RenderFrontier(rep))
	fmt.Printf("frontier report written to %s\n", path)
	fmt.Printf("[frontier completed in %v]\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}

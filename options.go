package lighttrader

// The context-aware facade. New, NewServer and BacktestContext are the
// documented entry points; configuration flows through functional options so
// one vocabulary (WithAccelerators, WithPowerBudget, WithWorkloadScheduling,
// WithProbe, ...) covers both the back-test simulator and the live serving
// runtime. The positional NewLightTrader constructor remains as a thin
// deprecated wrapper.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"lighttrader/internal/cgra"
	"lighttrader/internal/core"
	"lighttrader/internal/scenario"
	"lighttrader/internal/sched"
	"lighttrader/internal/serve"
	"lighttrader/internal/signal"
	"lighttrader/internal/sim"
)

// Probe observes a run's query lifecycle, DVFS transitions and load samples
// (attach with WithProbe).
type Probe = sim.Probe

// Tracer is the built-in Probe: per-cause miss attribution plus JSONL event
// export.
type Tracer = sim.Tracer

// NewTracer returns an empty Tracer.
func NewTracer() *Tracer { return sim.NewTracer() }

// Policy selects Algorithm 1's issue objective (PPW by default).
type Policy = sched.Policy

// Scheduler is a pluggable scheduling strategy: the engine asks it, once per
// idle accelerator, what to issue. See WithScheduler.
type Scheduler = sched.Scheduler

// SchedulerFactory builds a Scheduler bound to a scheduling config. Engines
// invoke it at construction/reset time (once per serving lane, once per
// simulator reset), so stateful policies start each run fresh.
type SchedulerFactory = sched.Factory

// SchedContext is the observed state one scheduling decision is made from.
type SchedContext = sched.SchedContext

// SchedDecision is a Scheduler's answer: the issue plus the explained verdict.
type SchedDecision = sched.Decision

// SchedulerByName resolves a registered policy name ("ppw", "fcfs", "greedy",
// "rr", "sjf", "qtable") to its factory — the -scheduler flag vocabulary.
func SchedulerByName(name string) (SchedulerFactory, error) { return sched.FactoryByName(name) }

// SchedulerNames returns the registered scheduling policy names, sorted.
func SchedulerNames() []string { return sched.SchedulerNames() }

// Scenario is the unified traffic source: a seeded, deterministic generator
// of composable market regimes emitting real SBE packet streams. One
// Scenario drives every deployment target byte-identically — the back-test
// simulator via BacktestContext(WithScenario(...)), the serving runtime via
// ReplayScenario, and a live venue via its raw Packets().
type Scenario = scenario.Source

// ScenarioScript is a scenario's phase program: the listed market plus the
// timed regime sequence (see NewScenario for custom scripts).
type ScenarioScript = scenario.Script

// ScenarioPhase is one timed regime of a scenario day.
type ScenarioPhase = scenario.Phase

// ScenarioByName resolves a registered scenario name ("quiet", "opening",
// "flash-crash", "halt-resume", "thin-book", "multi-shock", "trading-day")
// to a seeded source — the -scenario flag vocabulary, same rule as
// SchedulerByName.
func ScenarioByName(name string, seed int64) (*Scenario, error) {
	return scenario.ByName(name, seed)
}

// ScenarioNames returns the registered scenario names, sorted.
func ScenarioNames() []string { return scenario.Names() }

// NewScenario builds a source from a custom phase script.
func NewScenario(name string, script ScenarioScript, seed int64) (*Scenario, error) {
	return scenario.New(name, script, seed)
}

// ReplayScenario replays a scenario's byte stream through a serving
// runtime at its recorded arrival times and drains the lanes: the serving
// analogue of BacktestContext(WithScenario(...)). The caller reads the
// outcome from Server.Stats().
func ReplayScenario(srv *Server, src *Scenario) error {
	for _, tk := range src.Ticks() {
		if err := srv.Submit(tk.TimeNanos, tk.Packet); err != nil {
			return err
		}
	}
	srv.Drain()
	return nil
}

// Precision selects the accelerator execution data type.
type Precision = cgra.Precision

// MultiPipeline is the multi-instrument subscription set: one functional
// pipeline per symbol over a shared market-data channel.
type MultiPipeline = core.MultiPipeline

// NewMultiPipeline returns an empty subscription set; Add instruments, then
// serve it with NewServer (or drive it serially with OnPacket).
func NewMultiPipeline() *MultiPipeline { return core.NewMultiPipeline() }

// Server is the concurrent multi-symbol serving runtime: worker lanes (one
// per modelled accelerator) applying Algorithm 1's batch/deadline decision
// to live queries.
type Server = serve.Server

// ServeStats is the runtime's miss-attribution counter set.
type ServeStats = serve.Stats

// OrderSink receives the orders one instrument generated from one packet.
type OrderSink = serve.OrderSink

// OrderLog is a thread-safe OrderSink recording per-instrument streams.
type OrderLog = serve.OrderLog

// NewOrderLog returns an empty order log.
func NewOrderLog() *OrderLog { return serve.NewOrderLog() }

// TradeSignal is one published prediction: action, confidence, horizon and
// the top-of-book snapshot it was made from, plus arrival/publish
// timestamps and the symbol's monotonic sequence number.
type TradeSignal = signal.TradeSignal

// SignalGateway is the signal-distribution tier: sharded, conflated
// fan-out of every served symbol's predictions to in-process subscribers
// (Server.Subscribe) and TCP wire clients (SignalGateway.Serve). Attach
// one to a serving runtime with WithSignalGateway.
type SignalGateway = signal.Gateway

// SignalGatewayConfig parameterises NewSignalGateway (shard count,
// prediction horizon, wire heartbeat/write-deadline tuning). The zero
// value selects the defaults.
type SignalGatewayConfig = signal.Config

// SignalSubscription is one conflated in-process subscription: receive
// from C(), read conflation drops from Drops(), Close() to detach. The
// stream is latest-value-wins — a slow consumer always finds the newest
// signal, never a backlog.
type SignalSubscription = signal.Subscription

// SignalStats is the gateway's counter set (published, delivered,
// conflation drops, subscriber and connection gauges).
type SignalStats = signal.Stats

// NewSignalGateway builds a signal gateway and starts its fan-out shards.
// The caller owns its lifecycle (Close it after the server drains).
func NewSignalGateway(cfg SignalGatewayConfig) (*SignalGateway, error) {
	return signal.NewGateway(cfg)
}

// SignalClient is the TCP subscriber side of the wire protocol: it dials a
// gateway, subscribes its symbols, decodes the conflated stream, and
// reconnects with capped exponential backoff (see examples/signals).
type SignalClient = signal.Client

// SignalClientConfig parameterises NewSignalClient (address, symbols, the
// per-signal callback, heartbeat and backoff).
type SignalClientConfig = signal.ClientConfig

// NewSignalClient builds a wire subscriber; call Run to connect and
// consume.
func NewSignalClient(cfg SignalClientConfig) *SignalClient {
	return signal.NewClient(cfg)
}

// config is the resolved option set shared by New, NewServer and
// BacktestContext.
type config struct {
	accels    int
	power     PowerCondition
	schedOpts SchedulerOptions
	admission bool // any scheduling feature requested

	probe         Probe
	deadline      time.Duration
	maxQueue      int
	backpressure  bool
	inline        bool
	modelledClock bool
	noPowerGov    bool
	sink          OrderSink
	clock         func() int64
	signals       *SignalGateway
	scenario      *Scenario
	zoo           []*Model
	degrade       bool
}

// Option configures New, NewServer or BacktestContext. Options that do not
// apply to an entry point are ignored by it (WithOrderSink has no meaning
// in a back-test; WithPrecision has none at run time).
type Option func(*config)

func defaults() config {
	return config{accels: 4, power: Sufficient}
}

func resolve(opts []Option) config {
	cfg := defaults()
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithAccelerators sets the modelled accelerator count: simulated
// accelerators in a back-test system, worker lanes in a serving runtime
// (one logical lane per accelerator). Default 4.
func WithAccelerators(n int) Option { return func(c *config) { c.accels = n } }

// WithPowerBudget selects the card power envelope (Sufficient or Limited,
// or a custom PowerCondition). Default Sufficient.
func WithPowerBudget(p PowerCondition) Option { return func(c *config) { c.power = p } }

// WithWorkloadScheduling enables Algorithm 1 (PPW-driven batch and DVFS
// selection under the deadline).
func WithWorkloadScheduling() Option {
	return func(c *config) { c.schedOpts.WorkloadScheduling = true; c.admission = true }
}

// WithDVFSScheduling enables Algorithm 2 (DVFS power redistribution).
func WithDVFSScheduling() Option {
	return func(c *config) { c.schedOpts.DVFSScheduling = true; c.admission = true }
}

// WithBatchOptions overrides Algorithm 1's batch ladder.
func WithBatchOptions(batches []int) Option {
	return func(c *config) { c.schedOpts.BatchOptions = batches }
}

// WithPolicy overrides Algorithm 1's issue objective.
func WithPolicy(p Policy) Option { return func(c *config) { c.schedOpts.Policy = p } }

// WithScheduler swaps the scheduling strategy itself (default: the paper's
// proactive PPW scheduler). Resolve named policies with SchedulerByName.
// Selecting a scheduler implies admission control, so it enables workload
// scheduling when neither scheduling feature was requested.
func WithScheduler(f SchedulerFactory) Option {
	return func(c *config) {
		c.schedOpts.Scheduler = f
		if f != nil && !c.schedOpts.WorkloadScheduling && !c.schedOpts.DVFSScheduling {
			c.schedOpts.WorkloadScheduling = true
		}
		if f != nil {
			c.admission = true
		}
	}
}

// WithPrecision selects the accelerator execution data type (default BF16).
func WithPrecision(p Precision) Option { return func(c *config) { c.schedOpts.Precision = p } }

// WithProbe attaches an observability probe: to the simulator in
// BacktestContext, to the runtime in NewServer.
func WithProbe(p Probe) Option { return func(c *config) { c.probe = p } }

// WithDeadline grants served queries a per-query time budget (t_avail);
// zero means no deadline. Serving entry points only.
func WithDeadline(d time.Duration) Option { return func(c *config) { c.deadline = d } }

// WithMaxQueue bounds each lane's queue (default 64). Serving only.
func WithMaxQueue(n int) Option { return func(c *config) { c.maxQueue = n } }

// WithBackpressure blocks submission when a lane queue is full instead of
// evicting the oldest query. Serving only.
func WithBackpressure() Option { return func(c *config) { c.backpressure = true } }

// WithInline runs the serving runtime inline on the caller's goroutine —
// the degenerate serial configuration (orders return synchronously through
// Server.OnDecodedPacket).
func WithInline() Option { return func(c *config) { c.inline = true } }

// WithModelledClock runs serving admission and completion on modelled
// arrival time instead of the wall clock: decisions read each query's
// submitted arrival timestamp and batches complete at their scheduled
// latency-table instants, so a replayed trace reproduces the back-test
// simulator's timing exactly regardless of host speed. Requires
// Algorithm-1 admission; incompatible with WithClock and WithBackpressure.
// Serving only.
func WithModelledClock() Option { return func(c *config) { c.modelledClock = true } }

// WithoutPowerGovernor disables the online Algorithm-2 power governor, the
// drop-on-power-infeasible status quo: lanes keep their last operating
// point while idle and power-infeasible decisions are dropped instead of
// retried after a cross-lane saving step. Serving only; the default (with
// DVFS scheduling) is governed.
func WithoutPowerGovernor() Option { return func(c *config) { c.noPowerGov = true } }

// WithOrderSink routes generated orders to sink. Serving only.
func WithOrderSink(sink OrderSink) Option { return func(c *config) { c.sink = sink } }

// WithClock supplies the serving admission clock (default: the
// deterministic arrival-driven logical clock). Serving only.
func WithClock(clock func() int64) Option { return func(c *config) { c.clock = clock } }

// WithScenario selects a scenario as the run's traffic source. In
// BacktestContext it replaces the ticks argument (pass nil ticks); resolve
// named scenarios with ScenarioByName or build custom scripts with
// NewScenario.
func WithScenario(src *Scenario) Option { return func(c *config) { c.scenario = src } }

// WithModelZoo supplies the serving runtime's candidate set of cheaper
// models for degrade-to-cheaper-model switching (build variants with
// BuildZoo). NewServer compiles each candidate for the accelerator, keeps
// the ones strictly cheaper than the primary model, and wires them into a
// cost-descending ladder: when a query is deadline- or power-infeasible on
// the full model — even after the power governor's saving step — admission
// re-runs down the ladder and answers on the first rung that fits instead
// of dropping. Degraded answers are counted in ServeStats.Degrades and
// ServeStats.TierIssues, never hidden. Implies WithModelDegradation and
// workload scheduling. Serving only.
func WithModelZoo(models ...*Model) Option {
	return func(c *config) {
		c.zoo = models
		c.degrade = true
		c.admission = true
		if !c.schedOpts.WorkloadScheduling && !c.schedOpts.DVFSScheduling {
			c.schedOpts.WorkloadScheduling = true
		}
	}
}

// WithModelDegradation arms degrade-to-cheaper-model switching with a
// default two-rung CNN ladder (width 16 and width 8 rungs of the M1…M5
// family). Use WithModelZoo to choose the candidate models instead. Implies
// workload scheduling. Serving only.
func WithModelDegradation() Option {
	return func(c *config) {
		c.degrade = true
		c.admission = true
		if !c.schedOpts.WorkloadScheduling && !c.schedOpts.DVFSScheduling {
			c.schedOpts.WorkloadScheduling = true
		}
	}
}

// WithSignalGateway attaches a signal-distribution gateway to the serving
// runtime: every subscription's inference results are published to the
// gateway's conflated per-symbol streams, consumable in-process via
// Server.Subscribe or over TCP via SignalGateway.Serve. Serving only.
func WithSignalGateway(gw *SignalGateway) Option { return func(c *config) { c.signals = gw } }

// New assembles a simulated LightTrader appliance from options:
//
//	sys, err := lighttrader.New(lighttrader.NewDeepLOB(),
//	    lighttrader.WithAccelerators(4),
//	    lighttrader.WithPowerBudget(lighttrader.Limited),
//	    lighttrader.WithWorkloadScheduling(),
//	    lighttrader.WithDVFSScheduling())
//
// Defaults: 4 accelerators, the sufficient power envelope, both scheduler
// features off, BF16.
func New(m *Model, opts ...Option) (System, error) {
	cfg := resolve(opts)
	syscfg, err := core.Configure(m, cfg.accels, cfg.power, cfg.schedOpts)
	if err != nil {
		return nil, err
	}
	return core.NewSystem(syscfg)
}

// NewServer assembles the concurrent serving runtime over a subscription
// set. WithAccelerators sets the lane count (WithInline selects the serial
// degenerate configuration instead); WithWorkloadScheduling/
// WithDVFSScheduling enable online Algorithm-1 admission with latency
// tables compiled for the first subscription's model under WithPowerBudget
// (DVFS scheduling also arms the online Algorithm-2 power governor; opt out
// with WithoutPowerGovernor); WithModelZoo/WithModelDegradation wire a
// cost-sorted ladder of cheaper zoo models that admission falls back to
// when the full model is infeasible; WithDeadline, WithMaxQueue, WithBackpressure,
// WithModelledClock, WithProbe, WithOrderSink and WithClock configure the
// runtime directly. Start lanes with Server.Run; feed packets with
// Server.Submit.
func NewServer(mp *MultiPipeline, opts ...Option) (*Server, error) {
	cfg := resolve(opts)
	scfg := serve.Config{
		MaxQueue:             cfg.maxQueue,
		Backpressure:         cfg.backpressure,
		TAvailNanos:          cfg.deadline.Nanoseconds(),
		ModelledClock:        cfg.modelledClock,
		DisablePowerGovernor: cfg.noPowerGov,
		Clock:                cfg.clock,
		Probe:                cfg.probe,
		OnOrders:             cfg.sink,
		Signals:              cfg.signals,
	}
	if !cfg.inline {
		scfg.Lanes = cfg.accels
	}
	if cfg.admission && mp != nil && mp.Len() > 0 {
		lanes := scfg.Lanes
		if lanes == 0 {
			lanes = 1
		}
		syscfg, err := core.Configure(mp.Pipelines()[0].Model(), lanes, cfg.power, cfg.schedOpts)
		if err != nil {
			return nil, err
		}
		scfg.Sched = &syscfg.Sched
		scfg.Scheduler = syscfg.Scheduler
		scfg.PrePipelineNanos = syscfg.PrePipelineNanos
		if cfg.degrade {
			tiers, err := buildTiers(cfg, &syscfg.Sched, lanes)
			if err != nil {
				return nil, err
			}
			scfg.Tiers = tiers
		}
	}
	return serve.New(mp, scfg)
}

// defaultZoo is WithModelDegradation's fallback ladder: two rungs of the
// M1…M5 CNN family, cheap enough to sit under every benchmark primary.
func defaultZoo() []*Model {
	return []*Model{
		MustBuildZoo(SizedCNNSpec("degrade-m", 16, 0)),
		MustBuildZoo(SizedCNNSpec("degrade-s", 8, 0)),
	}
}

// buildTiers compiles the zoo candidates onto the primary's accelerator
// configuration, keeps the ones strictly cheaper than the primary at the
// static batch-1 operating point, and orders them cost-descending — the
// first-fit rung order that loses the least accuracy per recovered answer.
func buildTiers(cfg config, primary *sched.Config, lanes int) ([]serve.TierConfig, error) {
	zoo := cfg.zoo
	if len(zoo) == 0 {
		zoo = defaultZoo()
	}
	primaryTT := primary.TotalNanos(primary.StaticDVFS, 1)
	type rung struct {
		tier serve.TierConfig
		tt   int64
	}
	var rungs []rung
	for _, m := range zoo {
		syscfg, err := core.Configure(m, lanes, cfg.power, cfg.schedOpts)
		if err != nil {
			return nil, err
		}
		tierSched := syscfg.Sched
		tt := tierSched.TotalNanos(tierSched.StaticDVFS, 1)
		if tt >= primaryTT {
			continue // not cheaper than the primary: never a useful rung
		}
		rungs = append(rungs, rung{serve.TierConfig{Sched: &tierSched, Model: m}, tt})
	}
	if len(rungs) == 0 {
		return nil, fmt.Errorf("lighttrader: no zoo model is cheaper than the primary at batch 1 (%d ns); degradation would never fire", primaryTT)
	}
	sort.SliceStable(rungs, func(i, j int) bool { return rungs[i].tt > rungs[j].tt })
	tiers := make([]serve.TierConfig, len(rungs))
	for i, r := range rungs {
		tiers[i] = r.tier
	}
	return tiers, nil
}

// BacktestContext is Backtest under a context: cancellation stops the
// replay at the next arrival boundary and returns metrics over the
// truncated prefix — every counted query is fully accounted, none are torn.
// WithProbe attaches an observer; WithScenario substitutes a scenario's
// stream for the ticks argument (pass nil ticks); other options are
// ignored.
func BacktestContext(ctx context.Context, ticks []Tick, tAvail time.Duration, sys System, opts ...Option) Metrics {
	cfg := resolve(opts)
	if ticks == nil && cfg.scenario != nil {
		ticks = cfg.scenario.Ticks()
	}
	ro := []sim.RunOption{sim.WithContext(ctx)}
	if cfg.probe != nil {
		ro = append(ro, sim.WithProbe(cfg.probe))
	}
	return sim.RunWithOptions(sim.QueriesFromTicks(ticks, tAvail.Nanoseconds()), sys, ro...)
}

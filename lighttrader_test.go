package lighttrader

import (
	"bytes"
	"testing"
	"time"
)

func smallTrace(t testing.TB) []Tick {
	t.Helper()
	return GenerateTrace(DefaultTraceConfig(), 3000)
}

func TestPublicBacktestLightTrader(t *testing.T) {
	trace := smallTrace(t)
	sys, err := NewLightTrader(NewVanillaCNN(), 2, Sufficient, SchedulerOptions{
		WorkloadScheduling: true, DVFSScheduling: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := Backtest(trace, 20*time.Millisecond, sys)
	if m.Total != len(trace) || m.Unaccounted != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.ResponseRate <= 0.5 {
		t.Fatalf("response rate = %v", m.ResponseRate)
	}
}

func TestPublicBaselinesOrdering(t *testing.T) {
	trace := smallTrace(t)
	model := NewVanillaCNN()
	lt, err := NewLightTrader(model, 1, Sufficient, SchedulerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ltR := Backtest(trace, 20*time.Millisecond, lt).ResponseRate
	gpuR := Backtest(trace, 20*time.Millisecond, NewGPUBaseline(model)).ResponseRate
	fpgaR := Backtest(trace, 20*time.Millisecond, NewFPGABaseline(model)).ResponseRate
	if !(ltR > fpgaR && fpgaR > gpuR) {
		t.Fatalf("ordering: LT %.3f FPGA %.3f GPU %.3f", ltR, fpgaR, gpuR)
	}
}

func TestPublicTraceRoundTrip(t *testing.T) {
	trace := GenerateTrace(DefaultTraceConfig(), 100)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, "ESU6", trace); err != nil {
		t.Fatal(err)
	}
	sym, got, err := ReadTrace(&buf)
	if err != nil || sym != "ESU6" || len(got) != 100 {
		t.Fatalf("round trip: %v %q %d", err, sym, len(got))
	}
}

func TestPublicPipeline(t *testing.T) {
	cfg := DefaultTraceConfig()
	trace := GenerateTrace(cfg, 120)
	norm := CalibrateNormalizer(trace)
	tc := DefaultTradingConfig(cfg.SecurityID)
	tc.MinConfidence = 0
	p, err := NewPipeline(cfg.Symbol, cfg.SecurityID, NewVanillaCNN(), norm, tc)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range trace {
		if _, err := p.OnPacket(tk.Packet); err != nil {
			t.Fatal(err)
		}
	}
	if p.Inferences() == 0 {
		t.Fatal("pipeline ran no inferences")
	}
}

func TestPublicModelPredict(t *testing.T) {
	m := NewDeepLOB()
	if m.TotalFLOPs() <= 0 || m.Params() <= 0 {
		t.Fatal("model accounting empty")
	}
}

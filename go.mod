module lighttrader

go 1.22

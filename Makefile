GO ?= go

.PHONY: build test race vet fmt-check api-check api-update bench bench-all bench-smoke bench-tickpath bench-sched bench-fanout bench-power bench-scenario bench-frontier sched-smoke fanout-smoke power-smoke scenario-smoke frontier-smoke fuzz-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# API-compatibility gate: the exported surface of the root package must
# match the checked-in golden snapshot. Deliberate API changes are recorded
# with api-update and reviewed as part of the diff.
api-check:
	$(GO) test -run '^TestAPISnapshot$$' .

api-update:
	$(GO) test -run '^TestAPISnapshot$$' . -update-api

# Kernel/inference micro-benchmarks (GEMM, conv, LSTM, model inference) and
# the tick-to-trade hot-path benchmarks (wire decode, book ops, end-to-end
# pipeline), archived as JSON so runs can be diffed. See EXPERIMENTS.md.
bench: bench-sched
	$(GO) test -run=^$$ -bench=. -benchmem ./internal/tensor/ ./internal/nn/ \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_kernels.json
	$(GO) test -run=^$$ -bench=. -benchmem \
		./internal/sbe/ ./internal/lob/ ./internal/latency/ ./internal/core/ \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_tickpath.json

# The scheduling-policy comparison (every registered strategy × three
# traffic regimes, with the Q-table trained first), archived as JSON so
# policy regressions show up in the diff. See EXPERIMENTS.md.
bench-sched:
	$(GO) run ./cmd/ltbench -schedjson BENCH_sched.json

# The limited-power recovery sweep: the calibrated tight-horizon workload
# through the simulator and the serving runtime with the Algorithm-2 power
# governor on and off, archived as JSON. See EXPERIMENTS.md.
bench-power:
	$(GO) run ./cmd/ltbench -powerjson BENCH_power.json

# The scenario × configuration chaos matrix: every registered market
# scenario (quiet, opening burst, flash crash, halt/resume, thin book,
# correlated multi-symbol shock, trading day) replayed through the
# instrumented simulator on three capacity rungs, with per-cause miss
# attribution, archived as JSON. See EXPERIMENTS.md.
bench-scenario:
	$(GO) run ./cmd/ltbench -scenariojson BENCH_scenario.json -parallel 0

# The inference-compute frontier: the model zoo trained on teacher-labelled
# synthetic LOB windows and priced on the CGRA latency tables (accuracy ×
# tick-to-trade latency × batch size), plus the flash-crash and opening
# burst scenarios with degrade-to-cheaper-model switching on and off,
# archived as JSON. See EXPERIMENTS.md.
bench-frontier:
	$(GO) run ./cmd/ltbench -frontierjson BENCH_frontier.json

# The signal fan-out experiment: propagation percentiles and conflation
# drops at 1k/10k/100k subscribers, the 1→8 shard sweep (modelled
# throughput), and the faultnet chaos scenario, archived as JSON. See
# EXPERIMENTS.md.
bench-fanout:
	$(GO) run ./cmd/ltbench -fanoutjson BENCH_fanout.json

# Every benchmark in the repo (including the sim-engine harness).
bench-all:
	$(GO) test -run=^$$ -bench=. -benchmem ./...

# One iteration of each kernel benchmark: a CI-speed check that the
# benchmark code itself still compiles and runs.
bench-smoke:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./internal/tensor/ ./internal/nn/

# One iteration of each tick-path benchmark plus the zero-allocation
# regression tests over the hot path (decode-into, book ops, snapshot,
# histogram record, end-to-end tick): allocation creep fails CI here.
bench-tickpath:
	$(GO) test -run='ZeroAlloc' -bench=. -benchtime=1x \
		./internal/sbe/ ./internal/lob/ ./internal/latency/ ./internal/core/

# Policy-matrix smoke: the full scheduler registry × three workloads over a
# small trace via bench.RunMatrix, checked byte-identical across worker
# counts, plus the per-policy engine invariants.
sched-smoke:
	$(GO) test -run 'TestSchedMatrix|TestEveryPolicyRespectsEngineInvariants' \
		./internal/bench/ ./internal/core/

# Fan-out smoke: a scaled-down signal-gateway experiment (scale rows, shard
# sweep, faultnet chaos) with exact delivery/drop accounting, plus the
# AllocsPerRun gates proving the lane-side publish hook is 0 allocs/op both
# idle and with live subscribers.
fanout-smoke:
	$(GO) test -run 'TestFanoutSmoke' ./internal/bench/
	$(GO) test -run 'TestPublishZeroAlloc' ./internal/signal/

# Power-governor smoke: the sim-vs-serve limited-power differential (exact
# response and per-cause drop agreement at N=1), the recovery claim
# (governor strictly reduces DeferredPower drops vs the status quo), and the
# budget-safety property under the race detector with concurrent lanes.
power-smoke:
	$(GO) test -run 'TestSimServeLimitedPowerDifferential|TestGovernorRecoversDeferredPowerDrops' \
		./internal/bench/
	$(GO) test -race -run 'TestGovernorPowerCapProperty' ./internal/serve/

# Scenario smoke: the chaos-matrix shape/non-vacuity check and the
# three-way sim/serve/venue differential — one scenario byte stream must
# produce identical per-cause miss attribution through the offline
# simulator, the serving runtime, and a live venue's UDP republication.
scenario-smoke:
	$(GO) test -run 'TestScenarioMatrixSmoke|TestScenarioSimServeVenueDifferential' \
		./internal/bench/
	$(GO) test -run 'TestScenario' ./internal/trader/

# Frontier smoke: the scaled-down inference-compute frontier (every zoo
# variant trained and priced, Pareto monotonicity, burst recovery strictly
# above the drop-only baseline with degrades accounted), the degrade-ladder
# invariants property-checked across the whole scheduler registry, the
# serve-side ladder admission/end-to-end/validation tests, and the
# AllocsPerRun gate proving the lane-side model-switch path is 0 allocs/op.
frontier-smoke:
	$(GO) test -run 'TestFrontierSmoke' ./internal/bench/
	$(GO) test -run 'TestQuickDegradeInvariants' ./internal/sched/
	$(GO) test -run 'TestDegradeLadder|TestTierConfigValidation|TestModelSwitchPathNoAllocs' ./internal/serve/

# Short fuzz runs over the wire-facing decoders — the surfaces an exchange
# (or an attacker on the path) feeds directly. `go test -fuzz` takes exactly
# one matching target per invocation, hence one line per fuzzer.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=^FuzzDecodeSessionFrame$$ -fuzztime=10s ./internal/orderentry/
	$(GO) test -run=^$$ -fuzz=^FuzzDecodeFrame$$ -fuzztime=10s ./internal/orderentry/
	$(GO) test -run=^$$ -fuzz=^FuzzDecodePacket$$ -fuzztime=10s ./internal/sbe/
	$(GO) test -run=^$$ -fuzz=^FuzzDecodeMessage$$ -fuzztime=10s ./internal/sbe/
	$(GO) test -run=^$$ -fuzz=^FuzzDecodePacketParity$$ -fuzztime=10s ./internal/sbe/
	$(GO) test -run=^$$ -fuzz=^FuzzDecodeFrame$$ -fuzztime=10s ./internal/signal/

# The full CI gate: formatting, static analysis, build, the API snapshot,
# the test suite under the race detector (which covers the concurrent
# serving runtime in internal/serve and the signal gateway), single-
# iteration benchmark smoke runs (kernels and the zero-alloc tick path),
# the scheduling policy-matrix smoke, the signal fan-out smoke with its
# publish-hook allocation gate, the power-governor smoke (sim-vs-serve
# differential, recovery claim, budget-safety race test), the scenario
# smoke (chaos-matrix shape plus the three-way sim/serve/venue scenario
# differential and the degraded-mode trader regressions), the frontier
# smoke (zoo training/pricing, degrade-ladder invariants and the
# model-switch allocation gate), and a short fuzz pass over the wire
# decoders.
ci: fmt-check vet build api-check race bench-smoke bench-tickpath sched-smoke fanout-smoke power-smoke scenario-smoke frontier-smoke fuzz-smoke

GO ?= go

.PHONY: build test race vet fmt-check bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem ./...

# The full CI gate: formatting, static analysis, build, and the test suite
# under the race detector.
ci: fmt-check vet build race

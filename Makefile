GO ?= go

.PHONY: build test race vet fmt-check bench bench-all bench-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Kernel/inference micro-benchmarks (GEMM, conv, LSTM, model inference),
# archived as JSON so runs can be diffed. See EXPERIMENTS.md.
bench:
	$(GO) test -run=^$$ -bench=. -benchmem ./internal/tensor/ ./internal/nn/ \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_kernels.json

# Every benchmark in the repo (including the sim-engine harness).
bench-all:
	$(GO) test -run=^$$ -bench=. -benchmem ./...

# One iteration of each kernel benchmark: a CI-speed check that the
# benchmark code itself still compiles and runs.
bench-smoke:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./internal/tensor/ ./internal/nn/

# The full CI gate: formatting, static analysis, build, the test suite
# under the race detector, and a single-iteration benchmark smoke run.
ci: fmt-check vet build race bench-smoke

package lighttrader

import (
	"context"
	"testing"
	"time"

	"lighttrader/internal/core"
)

// TestNewMatchesDeprecatedConstructor pins the migration contract: the
// functional-options constructor builds the same system as the deprecated
// positional one, byte-identical under the deterministic back-test.
func TestNewMatchesDeprecatedConstructor(t *testing.T) {
	trace := smallTrace(t)
	via, err := New(NewVanillaCNN(),
		WithAccelerators(2),
		WithPowerBudget(Limited),
		WithWorkloadScheduling(),
		WithDVFSScheduling())
	if err != nil {
		t.Fatal(err)
	}
	old, err := NewLightTrader(NewVanillaCNN(), 2, Limited, SchedulerOptions{
		WorkloadScheduling: true, DVFSScheduling: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := Backtest(trace, 20*time.Millisecond, via)
	b := Backtest(trace, 20*time.Millisecond, old)
	if a != b {
		t.Fatalf("option-built system diverged from deprecated constructor:\n%+v\n%+v", a, b)
	}
}

// TestBacktestContext covers the context-aware replay: a live context is a
// no-op, a cancelled one presents nothing, and WithProbe observes every
// arrival.
func TestBacktestContext(t *testing.T) {
	trace := smallTrace(t)
	sys := func() System {
		s, err := New(NewVanillaCNN(), WithAccelerators(2), WithWorkloadScheduling())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	live := BacktestContext(context.Background(), trace, 20*time.Millisecond, sys())
	plain := Backtest(trace, 20*time.Millisecond, sys())
	if live != plain {
		t.Fatalf("live context perturbed the replay:\n%+v\n%+v", live, plain)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if m := BacktestContext(ctx, trace, 20*time.Millisecond, sys()); m.Total != 0 {
		t.Fatalf("cancelled replay presented %d queries", m.Total)
	}
	tr := NewTracer()
	m := BacktestContext(context.Background(), trace, 20*time.Millisecond, sys(), WithProbe(tr))
	if tr.Arrived() != m.Total {
		t.Fatalf("probe saw %d arrivals of %d", tr.Arrived(), m.Total)
	}
}

// servingFixture builds a two-instrument subscription set and the
// interleaved shared feed for the serving facade tests.
func servingFixture(t *testing.T) (func() *MultiPipeline, [][]byte) {
	t.Helper()
	type inst struct {
		sym string
		id  int32
		mid int64
	}
	insts := []inst{{"ESU6", 1, 450000}, {"NQU6", 2, 1500000}}
	traces := make([][]Tick, len(insts))
	for i, in := range insts {
		cfg := DefaultTraceConfig()
		cfg.Symbol, cfg.SecurityID, cfg.MidPrice = in.sym, in.id, in.mid
		traces[i] = GenerateTrace(cfg, 180)
	}
	var packets [][]byte
	for j := range traces[0] {
		for i := range traces {
			packets = append(packets, traces[i][j].Packet)
		}
	}
	build := func() *MultiPipeline {
		mp := NewMultiPipeline()
		for i, in := range insts {
			tcfg := DefaultTradingConfig(in.id)
			tcfg.MinConfidence = 0
			if err := mp.Add(in.sym, in.id, NewSizedCNN("facade-"+in.sym, 8, 0),
				CalibrateNormalizer(traces[i]), tcfg); err != nil {
				t.Fatal(err)
			}
		}
		return mp
	}
	return build, packets
}

// TestPublicServing drives the serving facade end to end: the inline
// (degenerate serial) configuration and a two-lane fleet with online
// Algorithm-1 admission replay the same shared feed and agree on every
// per-symbol order stream and runtime counter.
func TestPublicServing(t *testing.T) {
	build, packets := servingFixture(t)

	run := func(opts ...Option) (*Server, *OrderLog) {
		log := NewOrderLog()
		srv, err := NewServer(build(), append(opts, WithOrderSink(log.Sink()))...)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() { defer close(done); _ = srv.Run(ctx) }()
		for i, buf := range packets {
			if err := srv.Submit(int64(i), buf); err != nil {
				t.Fatal(err)
			}
		}
		srv.Drain()
		cancel()
		<-done
		return srv, log
	}

	inline, inlineLog := run(WithInline())
	fleet, fleetLog := run(WithAccelerators(2), WithBackpressure(),
		WithWorkloadScheduling(), WithDeadline(time.Hour))

	for _, srv := range []*Server{inline, fleet} {
		st := srv.Stats()
		if st.Submitted != len(packets) || st.Served != st.Submitted || st.Dropped() != 0 {
			t.Fatalf("lossless replay expected: %+v", st)
		}
	}
	if inline.Lanes() != 1 || !inline.Inline() {
		t.Fatalf("inline server: lanes=%d inline=%v", inline.Lanes(), inline.Inline())
	}
	if fleet.Lanes() != 2 || fleet.Inline() {
		t.Fatalf("fleet server: lanes=%d inline=%v", fleet.Lanes(), fleet.Inline())
	}
	if fleet.Stats().Batches == 0 {
		t.Fatal("admission enabled but no batches issued")
	}
	if inlineLog.Total() == 0 {
		t.Fatal("no orders generated; parity would be vacuous")
	}
	for _, id := range []int32{1, 2} {
		a, b := inlineLog.Orders(id), fleetLog.Orders(id)
		if len(a) != len(b) {
			t.Fatalf("security %d: inline %d orders, fleet %d", id, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("security %d order %d diverged: %+v vs %+v", id, i, a[i], b[i])
			}
		}
		ia, ok1 := inline.Snapshot(id, 0)
		ib, ok2 := fleet.Snapshot(id, 0)
		if !ok1 || !ok2 || ia.Bids != ib.Bids || ia.Asks != ib.Asks {
			t.Fatalf("security %d books diverged at quiesce", id)
		}
	}
}

// TestModelZooFacade covers degrade-to-cheaper-model switching through the
// facade: WithModelZoo wires a compiled ladder under the primary, a
// deadline inside the degrade window turns drop-only losses into counted
// degraded answers, a candidate no cheaper than the primary is rejected,
// and WithModelDegradation's default ladder builds without a zoo.
func TestModelZooFacade(t *testing.T) {
	cfg := DefaultTraceConfig()
	trace := GenerateTrace(cfg, 160)
	norm := CalibrateNormalizer(trace)
	build := func() *MultiPipeline {
		mp := NewMultiPipeline()
		tcfg := DefaultTradingConfig(cfg.SecurityID)
		if err := mp.Add(cfg.Symbol, cfg.SecurityID, NewVanillaCNN(), norm, tcfg); err != nil {
			t.Fatal(err)
		}
		return mp
	}

	// The degrade window: a deadline the primary cannot meet at batch 1 but
	// the tier can, computed from the same latency tables NewServer compiles.
	primary, err := core.Configure(NewVanillaCNN(), 1, Sufficient, SchedulerOptions{WorkloadScheduling: true})
	if err != nil {
		t.Fatal(err)
	}
	tierModel := MustBuildZoo(SizedCNNSpec("facade-tier", 8, 0))
	tier, err := core.Configure(tierModel, 1, Sufficient, SchedulerOptions{WorkloadScheduling: true})
	if err != nil {
		t.Fatal(err)
	}
	primaryTT := primary.Sched.TotalNanos(primary.Sched.StaticDVFS, 1)
	tierTT := tier.Sched.TotalNanos(tier.Sched.StaticDVFS, 1)
	mid := time.Duration(primary.PrePipelineNanos + (primaryTT+tierTT)/2)

	replay := func(opts ...Option) ServeStats {
		srv, err := NewServer(build(), append([]Option{
			WithInline(), WithModelledClock(), WithDeadline(mid),
		}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		for i, tk := range trace {
			if err := srv.Submit(int64(i)*int64(time.Millisecond), tk.Packet); err != nil {
				t.Fatal(err)
			}
		}
		srv.Drain()
		return srv.Stats()
	}

	baseline := replay(WithWorkloadScheduling())
	ladder := replay(WithModelZoo(tierModel))

	if baseline.DeferredDeadline == 0 {
		t.Fatalf("baseline dropped nothing; the deadline window does not bite: %+v", baseline)
	}
	if ladder.Degrades == 0 || ladder.Served != ladder.Submitted || ladder.Dropped() != 0 {
		t.Fatalf("ladder did not recover the window: %+v", ladder)
	}
	if ladder.ResponseRate <= baseline.ResponseRate {
		t.Fatalf("ladder response %.3f not above drop-only %.3f", ladder.ResponseRate, baseline.ResponseRate)
	}
	if len(ladder.TierIssues) != 2 || ladder.TierIssues[1] != ladder.Degrades {
		t.Fatalf("tier accounting inconsistent: issues %v, degrades %d", ladder.TierIssues, ladder.Degrades)
	}

	// A candidate no cheaper than the primary can never be a useful rung.
	if _, err := NewServer(build(), WithInline(), WithDeadline(mid), WithModelZoo(NewVanillaCNN())); err == nil {
		t.Fatal("zoo with no cheaper model accepted")
	}

	// WithModelDegradation falls back to the default two-rung CNN ladder.
	srv, err := NewServer(build(), WithInline(), WithDeadline(mid), WithModelDegradation())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(srv.Stats().TierIssues); got != 3 {
		t.Fatalf("default ladder wired %d tiers, want 3 (primary + 2 rungs)", got)
	}
}

// TestScenarioFacade covers the unified-traffic vocabulary: ScenarioByName
// resolves the registry, WithScenario substitutes a scenario for the ticks
// argument of BacktestContext (identically to passing its Ticks()), and
// ReplayScenario drives a serving runtime losslessly from the same source.
func TestScenarioFacade(t *testing.T) {
	names := ScenarioNames()
	if len(names) == 0 {
		t.Fatal("no registered scenarios")
	}
	if _, err := ScenarioByName("no-such-regime", 1); err == nil {
		t.Fatal("unknown scenario name resolved")
	}
	src, err := ScenarioByName("flash-crash", 2)
	if err != nil {
		t.Fatal(err)
	}

	sys := func() System {
		s, err := New(NewVanillaCNN(), WithAccelerators(2), WithWorkloadScheduling())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	via := BacktestContext(context.Background(), nil, time.Millisecond, sys(), WithScenario(src))
	direct := Backtest(src.Ticks(), time.Millisecond, sys())
	if via != direct {
		t.Fatalf("WithScenario back-test diverged from explicit ticks:\n%+v\n%+v", via, direct)
	}
	if via.Total != len(src.Packets()) {
		t.Fatalf("back-test saw %d queries for %d scenario packets", via.Total, len(src.Packets()))
	}

	ins := src.Script().Instruments[0]
	tcfg := DefaultTradingConfig(ins.SecurityID)
	tcfg.MinConfidence = 0
	mp := NewMultiPipeline()
	if err := mp.Add(ins.Symbol, ins.SecurityID, NewSizedCNN("facade-scn", 4, 0),
		CalibrateNormalizer(src.Ticks()[:200]), tcfg); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(mp, WithInline())
	if err != nil {
		t.Fatal(err)
	}
	if err := ReplayScenario(srv, src); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Submitted != len(src.Packets()) || st.Served != st.Submitted || st.Dropped() != 0 {
		t.Fatalf("scenario replay through the serving facade lost queries: %+v", st)
	}
}
